// Package lockdiscipline enforces the lock hygiene the paper's
// peer-to-peer services (Network Cohesion, Distributed Registry) depend
// on for soft consistency without stalls.
//
// Two invariants are checked for every sync.Mutex / sync.RWMutex
// acquisition:
//
//  1. A critical section that can return early must release its lock
//     with defer. Manual Unlock calls threaded through multiple return
//     paths are how the registry deadlocked in every CCM implementation
//     the paper surveys; the analyzer flags a Lock whose matching manual
//     Unlock span contains a return statement, and a Lock with no
//     matching Unlock in the same function at all.
//
//  2. No blocking operation while a lock is held: time.Sleep, net
//     dials/listens/accepts, sync.WaitGroup.Wait, bare channel sends and
//     receives (selects are exempt — they are assumed to carry timeout
//     arms), and ORB remote invocations (orb.ObjectRef.Invoke,
//     orb.Channel.Call). A node that blocks inside its registry lock
//     stalls every peer that gossips with it.
package lockdiscipline

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"corbalc/internal/analysis"
)

// Analyzer is the lockdiscipline analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "lockdiscipline",
	Doc:  "check deferred-unlock discipline and forbid blocking calls under a held lock",
	Run:  run,
}

// lockKind distinguishes writer and reader acquisitions so Lock pairs
// with Unlock and RLock with RUnlock.
type lockKind int

const (
	writer lockKind = iota
	reader
)

func (k lockKind) acquire() string {
	if k == reader {
		return "RLock"
	}
	return "Lock"
}

func (k lockKind) release() string {
	if k == reader {
		return "RUnlock"
	}
	return "Unlock"
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, body := range functionBodies(file) {
			checkFunction(pass, body)
		}
	}
	return nil
}

// functionBodies returns the body of every function in the file:
// declarations and literals alike, each analyzed independently.
func functionBodies(file *ast.File) []*ast.BlockStmt {
	var bodies []*ast.BlockStmt
	ast.Inspect(file, func(n ast.Node) bool {
		switch fn := n.(type) {
		case *ast.FuncDecl:
			if fn.Body != nil {
				bodies = append(bodies, fn.Body)
			}
		case *ast.FuncLit:
			bodies = append(bodies, fn.Body)
		}
		return true
	})
	return bodies
}

// lockOp is one Lock/Unlock-family call found in a function body.
type lockOp struct {
	stmt     ast.Stmt // enclosing ExprStmt or DeferStmt
	call     *ast.CallExpr
	recv     string // printed receiver expression, e.g. "n.mu"
	kind     lockKind
	acquire  bool // Lock/RLock vs Unlock/RUnlock
	deferred bool
}

func checkFunction(pass *analysis.Pass, body *ast.BlockStmt) {
	ops := collectLockOps(pass, body)
	var returns []token.Pos
	inspectShallow(body, func(n ast.Node) bool {
		if r, ok := n.(*ast.ReturnStmt); ok {
			returns = append(returns, r.Pos())
		}
		return true
	})

	for _, op := range ops {
		if !op.acquire || op.deferred {
			continue
		}
		// Releases between this acquire and the next acquire of the same
		// lock belong to this critical section (a branch may release on
		// several paths).
		nextAcquire := body.End()
		for _, other := range ops {
			if other.acquire && !other.deferred && other.kind == op.kind && other.recv == op.recv &&
				other.stmt.Pos() > op.stmt.End() && other.stmt.Pos() < nextAcquire {
				nextAcquire = other.stmt.Pos()
			}
		}
		hasDefer := false
		var manual []*lockOp
		for _, rel := range ops {
			if rel.acquire || rel.kind != op.kind || rel.recv != op.recv {
				continue
			}
			if rel.deferred {
				hasDefer = true
			} else if rel.stmt.Pos() > op.stmt.End() && rel.stmt.Pos() < nextAcquire {
				manual = append(manual, rel)
			}
		}

		// Invariant 1: release discipline.
		regionEnd := body.End()
		if !hasDefer {
			if len(manual) == 0 {
				pass.Reportf(op.call.Pos(),
					"%s.%s() is never released in this function; add defer %s.%s()",
					op.recv, op.kind.acquire(), op.recv, op.kind.release())
				continue
			}
			last := manual[len(manual)-1]
			nreturns := 0
			for _, rp := range returns {
				if rp > op.stmt.End() && rp < last.stmt.Pos() {
					nreturns++
				}
			}
			if nreturns > 0 {
				pass.Reportf(op.call.Pos(),
					"%s.%s() is released manually but the critical section has %d return path(s); use defer %s.%s()",
					op.recv, op.kind.acquire(), nreturns, op.recv, op.kind.release())
			}
			regionEnd = manual[0].stmt.Pos()
		}

		// Invariant 2: no blocking operation inside the critical section.
		checkBlocking(pass, body, op, op.stmt.End(), regionEnd)
	}
}

// collectLockOps gathers the Lock/Unlock-family calls on sync mutexes in
// body, not descending into nested function literals. Deferred closures
// are scanned so that `defer func() { mu.Unlock() }()` counts as a
// deferred release.
func collectLockOps(pass *analysis.Pass, body *ast.BlockStmt) []*lockOp {
	var ops []*lockOp
	addCall := func(stmt ast.Stmt, call *ast.CallExpr, deferred bool) {
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return
		}
		name := sel.Sel.Name
		var kind lockKind
		var acquire bool
		switch name {
		case "Lock":
			kind, acquire = writer, true
		case "Unlock":
			kind, acquire = writer, false
		case "RLock":
			kind, acquire = reader, true
		case "RUnlock":
			kind, acquire = reader, false
		default:
			return
		}
		if !isSyncMethod(pass.TypesInfo, sel) {
			return
		}
		ops = append(ops, &lockOp{
			stmt: stmt, call: call,
			recv: types.ExprString(sel.X),
			kind: kind, acquire: acquire, deferred: deferred,
		})
	}
	inspectShallow(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok {
				addCall(s, call, false)
			}
		case *ast.DeferStmt:
			if lit, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
				ast.Inspect(lit.Body, func(m ast.Node) bool {
					if call, ok := m.(*ast.CallExpr); ok {
						addCall(s, call, true)
					}
					return true
				})
				return false
			}
			addCall(s, s.Call, true)
		}
		return true
	})
	return ops
}

// isSyncMethod reports whether sel resolves to a method declared in
// package sync (covering sync.Mutex, sync.RWMutex and sync.Locker,
// including promoted embeds).
func isSyncMethod(info *types.Info, sel *ast.SelectorExpr) bool {
	f, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || f.Pkg() == nil {
		return false
	}
	return f.Pkg().Path() == "sync"
}

// checkBlocking reports blocking operations positioned inside
// (start, end) in body, skipping nested function literals, go
// statements, defers and selects.
func checkBlocking(pass *analysis.Pass, body *ast.BlockStmt, op *lockOp, start, end token.Pos) {
	held := op.recv + "." + op.kind.acquire() + "()"
	inspectShallow(body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.GoStmt, *ast.DeferStmt, *ast.SelectStmt:
			return false
		}
		if n == nil || n.Pos() <= start || n.End() > end {
			return true
		}
		switch v := n.(type) {
		case *ast.SendStmt:
			pass.Reportf(v.Pos(), "channel send while holding %s; release the lock first", held)
		case *ast.UnaryExpr:
			if v.Op == token.ARROW {
				pass.Reportf(v.Pos(), "channel receive while holding %s; release the lock first", held)
			}
		case *ast.CallExpr:
			if desc := blockingCall(pass.TypesInfo, v); desc != "" {
				pass.Reportf(v.Pos(), "%s while holding %s; release the lock first", desc, held)
			}
		}
		return true
	})
}

// blockingCall classifies call as a known-blocking operation, returning
// a description or "".
func blockingCall(info *types.Info, call *ast.CallExpr) string {
	f := analysis.FuncOf(info, call)
	if f == nil || f.Pkg() == nil {
		return ""
	}
	pkg, name := f.Pkg().Path(), f.Name()
	sig := f.Type().(*types.Signature)
	switch {
	case pkg == "time" && name == "Sleep":
		return "call to time.Sleep"
	case pkg == "net" && (strings.HasPrefix(name, "Dial") || strings.HasPrefix(name, "Listen") || name == "Accept"):
		return "call to net." + name
	case pkg == "sync" && name == "Wait" && sig.Recv() != nil && !isCondRecv(sig):
		return "call to sync.WaitGroup.Wait"
	case strings.HasSuffix(pkg, "internal/orb") && sig.Recv() != nil &&
		(name == "Invoke" || name == "InvokeOneway" || name == "Call" || name == "Send"):
		return "ORB invocation " + name
	}
	return ""
}

// isCondRecv reports whether the method receiver is *sync.Cond, whose
// Wait must be called with the lock held.
func isCondRecv(sig *types.Signature) bool {
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "Cond"
}

// inspectShallow walks n without descending into nested function
// literals (their bodies are analyzed as functions in their own right).
func inspectShallow(body *ast.BlockStmt, fn func(ast.Node) bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n == nil {
			return true
		}
		return fn(n)
	})
}

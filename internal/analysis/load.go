package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	PkgPath string
	Dir     string
	Files   []*ast.File
	Fset    *token.FileSet
	Types   *types.Package
	Info    *types.Info
	// TypeErrors holds type-check problems. Analysis still runs (the
	// AST is intact) but the driver surfaces these as failures.
	TypeErrors []error
}

// Loader parses and type-checks packages with a shared FileSet and a
// shared (caching) stdlib source importer.
type Loader struct {
	Fset  *token.FileSet
	imp   types.Importer
	extra map[string]*types.Package
}

// NewLoader returns a Loader. Cgo is disabled in the build context so
// that stdlib packages with cgo variants (net, os/user) type-check from
// their pure-Go fallbacks.
func NewLoader() *Loader {
	build.Default.CgoEnabled = false
	fset := token.NewFileSet()
	return &Loader{
		Fset:  fset,
		imp:   importer.ForCompiler(fset, "source", nil),
		extra: map[string]*types.Package{},
	}
}

// RegisterImport makes subsequently loaded packages resolve imports of
// path to pkg instead of consulting the source importer. analysistest
// uses this so fixture packages can import one another (the fixtures
// live under testdata, outside any importable module).
func (l *Loader) RegisterImport(path string, pkg *types.Package) {
	if pkg != nil {
		l.extra[path] = pkg
	}
}

// overlayImporter consults a map of pre-loaded packages before falling
// back to the underlying (source) importer.
type overlayImporter struct {
	base  types.Importer
	extra map[string]*types.Package
}

func (o overlayImporter) Import(path string) (*types.Package, error) {
	if p, ok := o.extra[path]; ok {
		return p, nil
	}
	return o.base.Import(path)
}

func (o overlayImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if p, ok := o.extra[path]; ok {
		return p, nil
	}
	if from, ok := o.base.(types.ImporterFrom); ok {
		return from.ImportFrom(path, dir, mode)
	}
	return o.base.Import(path)
}

// Load expands patterns (a directory, or a directory followed by "/...")
// relative to the current working directory and loads every Go package
// found, excluding test files and testdata/vendor/hidden directories.
func Load(patterns ...string) ([]*Package, error) {
	return NewLoader().Load(patterns...)
}

// Load implements the package-pattern loading described at Load.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	modRoot, modPath, err := findModule(".")
	if err != nil {
		return nil, err
	}
	dirs := map[string]bool{}
	for _, pat := range patterns {
		recursive := false
		if strings.HasSuffix(pat, "/...") || pat == "..." {
			recursive = true
			pat = strings.TrimSuffix(strings.TrimSuffix(pat, "..."), "/")
			if pat == "" {
				pat = "."
			}
		}
		abs, err := filepath.Abs(pat)
		if err != nil {
			return nil, err
		}
		if !recursive {
			dirs[abs] = true
			continue
		}
		walkErr := filepath.WalkDir(abs, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != abs && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			dirs[path] = true
			return nil
		})
		if walkErr != nil {
			return nil, walkErr
		}
	}
	sorted := make([]string, 0, len(dirs))
	for d := range dirs {
		sorted = append(sorted, d)
	}
	sort.Strings(sorted)

	var pkgs []*Package
	for _, dir := range sorted {
		rel, err := filepath.Rel(modRoot, dir)
		if err != nil || strings.HasPrefix(rel, "..") {
			return nil, fmt.Errorf("analysis: %s is outside module %s", dir, modRoot)
		}
		pkgPath := modPath
		if rel != "." {
			pkgPath = modPath + "/" + filepath.ToSlash(rel)
		}
		pkg, err := l.LoadDir(dir, pkgPath)
		if err != nil {
			if _, ok := err.(*build.NoGoError); ok {
				continue
			}
			return nil, fmt.Errorf("analysis: %s: %w", dir, err)
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// LoadDir parses and type-checks the single package in dir, assigning it
// the given import path. Test files are excluded.
func (l *Loader) LoadDir(dir, pkgPath string) (*Package, error) {
	bp, err := build.Default.ImportDir(dir, 0)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	pkg := &Package{PkgPath: pkgPath, Dir: dir, Files: files, Fset: l.Fset}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{
		Importer: overlayImporter{base: l.imp, extra: l.extra},
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	pkg.Types, _ = conf.Check(pkgPath, l.Fset, files, info)
	pkg.Info = info
	return pkg, nil
}

// findModule walks up from dir to the enclosing go.mod and returns the
// module root directory and module path.
func findModule(dir string) (root, path string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; d = filepath.Dir(d) {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("analysis: %s/go.mod has no module directive", d)
		}
		if filepath.Dir(d) == d {
			return "", "", fmt.Errorf("analysis: no go.mod found above %s", abs)
		}
	}
}

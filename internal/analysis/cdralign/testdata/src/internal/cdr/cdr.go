// Package cdr stands in for corbalc/internal/cdr: the one package
// exempt from cdralign, because it is the alignment-aware codec itself.
package cdr

// PutULong does raw big-endian assembly and must NOT be flagged here.
func PutULong(buf []byte, v uint32) {
	buf[0], buf[1], buf[2], buf[3] = byte(v>>24), byte(v>>16), byte(v>>8), byte(v)
}

// ULong reassembles and must NOT be flagged here.
func ULong(b []byte) uint32 {
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}

// Package a is the cdralign fixture: raw serialisation that must be
// flagged outside internal/cdr, plus byte-level code that must not be.
package a

import (
	"encoding/binary"
)

// Bad: encoding/binary bypasses CDR alignment bookkeeping.
func badBinaryPut(buf []byte, v uint32) {
	binary.BigEndian.PutUint32(buf, v) // want `use of encoding/binary outside internal/cdr`
}

// Bad: package-level binary helpers too.
func badBinaryRead(buf []byte) uint16 {
	return binary.LittleEndian.Uint16(buf) // want `use of encoding/binary outside internal/cdr`
}

// Bad: manual big-endian serialisation of a multi-byte primitive.
func badManualEncode(v uint32) [4]byte {
	return [4]byte{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)} // want `manual byte serialisation`
}

// Bad: manual reassembly of a multi-byte primitive.
func badManualDecode(b []byte) uint32 {
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3]) // want `manual byte deserialisation`
}

// Good: single-octet handling is not multi-byte serialisation.
func goodOctets(b []byte) byte {
	x := b[0] ^ 0xff
	return x &^ 0x0f
}

// Good: shifting integers for arithmetic (no byte conversion) is fine.
func goodShift(v uint32) uint32 {
	return v >> 3 << 1
}

// Good: widening a byte without shift-assembly (e.g. table lookup).
func goodWiden(b byte) uint32 {
	return uint32(b)
}

// Suppressed: acknowledged raw access (e.g. a checksum over the wire
// image) stays silent.
func suppressedChecksum(b []byte) uint16 {
	//lint:ignore cdralign checksum folds the raw wire image, not a CDR primitive
	return uint16(b[0])<<8 | uint16(b[1])
}

package cdralign_test

import (
	"testing"

	"corbalc/internal/analysis/analysistest"
	"corbalc/internal/analysis/cdralign"
)

func TestCDRAlign(t *testing.T) {
	analysistest.Run(t, cdralign.Analyzer, "a", "internal/cdr")
}

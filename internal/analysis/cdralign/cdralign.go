// Package cdralign enforces the paper's CDR transfer-syntax requirement
// that every multi-byte primitive is encoded through the alignment-aware
// helpers in corbalc/internal/cdr.
//
// CDR aligns each primitive on a boundary equal to its size, measured
// from the start of the enclosing message or encapsulation. Any code
// that serialises a multi-byte value with encoding/binary or by manual
// shift-and-mask assembly bypasses the alignment bookkeeping and can
// silently produce misaligned streams that a conforming peer rejects.
// The analyzer therefore flags, everywhere outside internal/cdr:
//
//   - any use of encoding/binary (binary.Write, binary.BigEndian.…);
//   - byte(x >> k): manual serialisation of a multi-byte value;
//   - T(b) << k inside an or-chain: manual deserialisation.
package cdralign

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"

	"corbalc/internal/analysis"
)

// Analyzer is the cdralign analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "cdralign",
	Doc:  "require CDR primitive encode/decode to go through internal/cdr alignment helpers",
	Run:  run,
}

// exemptSuffix names the one package allowed to do raw byte
// serialisation: the CDR codec itself.
const exemptSuffix = "internal/cdr"

func run(pass *analysis.Pass) error {
	if strings.HasSuffix(pass.PkgPath, exemptSuffix) {
		return nil
	}
	// One report per source line keeps a four-byte assembly expression
	// from producing four identical diagnostics.
	reported := map[string]bool{}
	reportf := func(pos token.Pos, format string, args ...any) {
		p := pass.Fset.Position(pos)
		lineKey := p.Filename + ":" + strconv.Itoa(p.Line)
		if reported[lineKey] {
			return
		}
		reported[lineKey] = true
		pass.Reportf(pos, format, args...)
	}

	analysis.InspectFiles(pass, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.SelectorExpr:
			if obj, ok := pass.TypesInfo.Uses[selRoot(e)].(*types.PkgName); ok &&
				obj.Imported().Path() == "encoding/binary" {
				reportf(e.Pos(), "use of encoding/binary outside internal/cdr; CDR primitives must go through the cdr.Encoder/Decoder alignment helpers")
				return false
			}
		case *ast.CallExpr:
			if isByteConversionOfShift(pass.TypesInfo, e) {
				reportf(e.Pos(), "manual byte serialisation of a multi-byte value; use the cdr.Encoder alignment helpers")
				return false
			}
		case *ast.BinaryExpr:
			if e.Op == token.SHL && isWideConversionOfByte(pass.TypesInfo, e.X) {
				reportf(e.Pos(), "manual byte deserialisation of a multi-byte value; use the cdr.Decoder alignment helpers")
				return false
			}
		}
		return true
	})
	return nil
}

// selRoot returns the leftmost identifier of a selector chain
// (binary.BigEndian.PutUint32 -> binary).
func selRoot(sel *ast.SelectorExpr) *ast.Ident {
	for {
		switch x := ast.Unparen(sel.X).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			sel = x
		default:
			return &ast.Ident{} // unresolvable root; Uses lookup will miss
		}
	}
}

// isByteConversionOfShift matches byte(x >> k) / uint8(x >> k).
func isByteConversionOfShift(info *types.Info, call *ast.CallExpr) bool {
	if len(call.Args) != 1 {
		return false
	}
	tv, ok := info.Types[call.Fun]
	if !ok || !tv.IsType() {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	if !ok || (b.Kind() != types.Uint8 && b.Kind() != types.Byte) {
		return false
	}
	bin, ok := ast.Unparen(call.Args[0]).(*ast.BinaryExpr)
	return ok && bin.Op == token.SHR
}

// isWideConversionOfByte matches T(b) where T is a 2-, 4- or 8-byte
// integer type and b has byte type — the building block of manual
// big/little-endian reassembly like uint32(raw[8])<<24 | ….
func isWideConversionOfByte(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) != 1 {
		return false
	}
	tv, ok := info.Types[call.Fun]
	if !ok || !tv.IsType() {
		return false
	}
	wide, ok := tv.Type.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	switch wide.Kind() {
	case types.Uint16, types.Uint32, types.Uint64, types.Int16, types.Int32, types.Int64:
	default:
		return false
	}
	argT, ok := info.Types[call.Args[0]]
	if !ok {
		return false
	}
	ab, ok := argT.Type.Underlying().(*types.Basic)
	return ok && (ab.Kind() == types.Uint8 || ab.Kind() == types.Byte)
}

// Package a is the poolreturn fixture: pooled acquires that leak (no
// release, no ownership transfer) and the full set of shapes that
// legitimately discharge the obligation.
package a

import (
	"context"
	"io"

	"corbalc/internal/bufpool"
	"corbalc/internal/cdr"
	"corbalc/internal/gateway"
	"corbalc/internal/giop"
	"corbalc/internal/orb"
)

type holder struct {
	msg *giop.Message
	buf []byte
}

// Bad: the buffer is only ever read; nothing Puts it back.
func badLeakBuffer(n int) byte {
	b := bufpool.Get(n) // want `result of bufpool\.Get is neither released nor transferred`
	return b[0]
}

// Bad: the acquire's result is dropped on the floor.
func badDiscardBuffer(n int) {
	bufpool.Get(n) // want `result of bufpool\.Get is discarded`
}

// Bad: blank assignment discards the value just as thoroughly.
func badBlankBuffer(n int) {
	_ = bufpool.Get(n) // want `result of bufpool\.Get is discarded`
}

// Bad: the encoder is written but never released or handed off.
func badLeakEncoder() int {
	e := cdr.GetEncoder(cdr.BigEndian, 0) // want `result of cdr\.GetEncoder is neither released nor transferred`
	e.WriteULong(7)
	return e.Len()
}

// Bad: the message is decoded from the wire and only read; field access
// and non-Release method calls do not discharge the obligation.
func badLeakMessage(r io.Reader) (uint32, error) {
	m, err := giop.ReadMessagePooled(r) // want `result of giop\.ReadMessagePooled is neither released nor transferred`
	if err != nil {
		return 0, err
	}
	return m.Header.Size, nil
}

// Bad: a body encoder that never reaches MessageFromEncoder or Release.
func badLeakBodyEncoder() int {
	e := giop.GetBodyEncoder(cdr.BigEndian) // want `result of giop\.GetBodyEncoder is neither released nor transferred`
	e.WriteULong(1)
	return e.Len()
}

// Good: released with bufpool.Put (a deferred release counts).
func goodPutBuffer(n int) byte {
	b := bufpool.Get(n)
	defer bufpool.Put(b)
	b[0] = 1
	return b[0]
}

// Good: released through the Release method.
func goodReleaseMessage(r io.Reader) (uint32, error) {
	m, err := giop.ReadMessagePooled(r)
	if err != nil {
		return 0, err
	}
	defer m.Release()
	return m.Header.Size, nil
}

// Good: ownership transfers by returning the value.
func goodReturnEncoder() *cdr.Encoder {
	e := cdr.GetEncoder(cdr.BigEndian, 0)
	e.WriteULong(7)
	return e
}

// Good: ownership transfers into MessageFromEncoder (an argument
// position), and the resulting message transfers by being returned at
// the acquire site itself.
func goodHandoffEncoder(h giop.Header) *giop.Message {
	e := giop.GetBodyEncoder(h.Order)
	e.WriteULong(42)
	return giop.MessageFromEncoder(h, e)
}

// Good: passing the value to any callee is a transfer; the callee now
// owns the release obligation.
func goodPassBuffer(n int, sink func([]byte)) {
	b := bufpool.Get(n)
	sink(b)
}

// Good: storing into a field moves ownership to the struct's owner.
func goodStoreMessage(h *holder, hd giop.Header, body []byte) {
	m := giop.NewMessage(hd, body)
	h.msg = m
}

// Good: the acquire feeding an assignment to a field directly is a
// transfer at the acquire site.
func goodStoreBufferDirect(h *holder, n int) {
	h.buf = bufpool.Get(n)
}

// Good: sending on a channel hands the value to the receiver.
func goodSendMessage(ch chan *giop.Message, hd giop.Header) {
	m := giop.NewMessage(hd, nil)
	ch <- m
}

// Good: a release inside a spawned closure satisfies the acquiring
// function — the dispatch-goroutine shape from internal/iiop.
func goodReleaseInClosure(r io.Reader, done chan struct{}) error {
	m, err := giop.ReadMessagePooled(r)
	if err != nil {
		return err
	}
	go func() {
		defer m.Release()
		_ = m.Header.Size
		close(done)
	}()
	return nil
}

// Bad: a pooled refusal reply is written out via field reads but never
// released. Handing reply.Header/reply.Body to the write coalescer is
// not an ownership transfer — selector reads leave the obligation with
// the caller.
func badLeakRefusalReply(write func(giop.Header, []byte) error, v giop.Version, order cdr.ByteOrder, id uint32) {
	reply, err := orb.SystemExceptionReply(v, order, id, orb.Transient()) // want `result of orb\.SystemExceptionReply is neither released nor transferred`
	if err != nil {
		return
	}
	_ = write(reply.Header, reply.Body)
}

// Good: the bounded-dispatch refuse() shape — the coalescer's write
// blocks until the frame is flushed, so the caller still owns the
// pooled reply afterwards and releases it.
func goodRefusalReplyReleased(write func(giop.Header, []byte) error, v giop.Version, order cdr.ByteOrder, id uint32) {
	reply, err := orb.SystemExceptionReply(v, order, id, orb.Transient())
	if err != nil {
		return
	}
	_ = write(reply.Header, reply.Body)
	reply.Release()
}

// Bad: a launched future that is only ever polled — nothing settles or
// abandons it, so its reply slot (and eventually a pooled reply) stays
// pinned.
func badLeakFuture(r *orb.ObjectRef) bool {
	fu, err := r.CallAsync("op", nil, nil) // want `result of orb\.ObjectRef\.CallAsync is neither released nor transferred`
	if err != nil {
		return false
	}
	return fu.Done()
}

// Good: Wait settles the future (collecting or abandoning the reply).
func goodWaitFuture(ctx context.Context, r *orb.ObjectRef) error {
	fu, err := r.CallAsyncContext(ctx, "op", nil, nil)
	if err != nil {
		return err
	}
	return fu.Wait(ctx)
}

// Good: Cancel abandons the call, releasing the slot.
func goodCancelFuture(r *orb.ObjectRef) {
	fu, err := r.CallAsync("op", nil, nil)
	if err != nil {
		return
	}
	fu.Cancel()
}

// Good: returning the future hands the settle-or-cancel obligation to
// the caller.
func goodReturnFuture(r *orb.ObjectRef) (*orb.Future, error) {
	return r.CallAsync("op", nil, nil)
}

// Suppressed: an acknowledged leak-to-GC stays silent.
func suppressedAbandon(r io.Reader) error {
	//lint:ignore poolreturn reply raced with cancellation; leak to GC rather than risk a double-Put
	m, err := giop.ReadMessagePooled(r)
	if err != nil {
		return err
	}
	_ = m.Header.Size
	return nil
}

// Bad: a gateway translation buffer that is acquired and only read —
// its pooled body bytes and argument scratch never return to the pool.
func badLeakTransBuf() int {
	tb := gateway.GetTransBuf() // want `result of gateway\.GetTransBuf is neither released nor transferred`
	_ = tb
	return 0
}

// Bad: discarded outright.
func badDiscardTransBuf() {
	gateway.GetTransBuf() // want `result of gateway\.GetTransBuf is discarded`
}

// Good: the handler shape — acquire, defer Release, use.
func goodDeferReleaseTransBuf() {
	tb := gateway.GetTransBuf()
	defer tb.Release()
	_ = tb
}

// Good: handing the buffer to another function transfers the release
// obligation.
func goodTransferTransBuf(sink func(*gateway.TransBuf)) {
	tb := gateway.GetTransBuf()
	sink(tb)
}

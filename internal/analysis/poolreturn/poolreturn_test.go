package poolreturn_test

import (
	"testing"

	"corbalc/internal/analysis/analysistest"
	"corbalc/internal/analysis/poolreturn"
)

func TestPoolReturn(t *testing.T) {
	analysistest.Run(t, poolreturn.Analyzer, "a")
}

// Package poolreturn enforces the release-point invariant on the hot
// path's pooled resources (DESIGN.md §9).
//
// Buffers from internal/bufpool, encoders from cdr.GetEncoder /
// giop.GetBodyEncoder, messages from giop.NewMessage /
// giop.MessageFromEncoder / giop.ReadMessagePooled, and async futures
// from ObjectRef.CallAsync / CallAsyncContext (which own a registered
// reply slot until settled by Wait or abandoned by Cancel) have exactly
// one owner, and that owner must either release the resource or hand
// ownership to someone who will. A function that acquires one and does
// neither leaks pool capacity silently: the program stays correct (the
// GC collects the buffer) but every such call site erodes the
// steady-state zero-allocation property the benchmarks gate.
//
// The analyzer is flow-insensitive and intraprocedural: within each
// function it flags an acquire call whose result sees neither
//
//   - a release — bufpool.Put(x) or x.Release() anywhere in the
//     function, including inside deferred calls and closures — nor
//   - an ownership transfer — x returned, passed as a call argument,
//     stored into a field/index/variable, placed in a composite
//     literal, sent on a channel, or its address taken.
//
// It cannot prove a release happens on every path; it catches the
// blunter bug of a pooled value that is acquired and then only ever
// read. Acquires whose result is discarded outright (an expression
// statement or an all-blank assignment) are flagged too. Legitimate
// leak-to-GC sites — the documented "when in doubt, do not double-Put"
// escape hatch — should carry //lint:ignore poolreturn <reason>.
package poolreturn

import (
	"go/ast"
	"go/types"
	"strings"

	"corbalc/internal/analysis"
)

// Analyzer is the poolreturn analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "poolreturn",
	Doc:  "require pooled buffers/encoders/messages to be released or ownership-transferred in the acquiring function",
	Run:  run,
}

// obligation describes what discharges one acquirer's result: the
// diagnostic text and the set of method names on the result whose call
// counts as a release. Most pooled values release through Release;
// async futures release through settling (Wait) or cancelling.
type obligation struct {
	msg      string
	releases map[string]bool
}

var releaseMethod = map[string]bool{"Release": true}

// futures hold a registered reply slot (and, once the reply lands, a
// pooled message): an abandoned future pins both until Wait collects or
// Cancel abandons the call.
var futureMethods = map[string]bool{"Wait": true, "Cancel": true}

// acquirers maps {package-path suffix, function name} of each pooled
// acquire function to its release obligation. Methods are keyed as
// "Recv.Name" (e.g. "ObjectRef.CallAsync"). Matching is by path suffix
// so fixture stand-ins loaded as "internal/giop" hit the same code path
// as corbalc/internal/giop.
var acquirers = map[[2]string]obligation{
	{"internal/bufpool", "Get"}:             {"return it with bufpool.Put", releaseMethod},
	{"internal/cdr", "GetEncoder"}:          {"call its Release method", releaseMethod},
	{"internal/giop", "GetBodyEncoder"}:     {"call Release, or hand it to giop.MessageFromEncoder", releaseMethod},
	{"internal/giop", "NewMessage"}:         {"call its Release method", releaseMethod},
	{"internal/giop", "MessageFromEncoder"}: {"call its Release method", releaseMethod},
	{"internal/giop", "ReadMessagePooled"}:  {"call its Release method", releaseMethod},
	// The bounded-dispatch refusal path builds a pooled TRANSIENT reply
	// and hands its Header/Body to the write coalescer; field reads are
	// not a transfer, so the caller keeps the release obligation.
	{"internal/orb", "SystemExceptionReply"}: {"call its Release method", releaseMethod},
	// An async future owns its pending-reply slot: the launcher must
	// settle it (Wait) or abandon it (Cancel), or hand it to someone
	// who will.
	{"internal/orb", "ObjectRef.CallAsync"}:        {"settle it with Wait or abandon it with Cancel", futureMethods},
	{"internal/orb", "ObjectRef.CallAsyncContext"}: {"settle it with Wait or abandon it with Cancel", futureMethods},
	// The web gateway's translation buffer wraps a pooled body buffer
	// and the decoded-argument scratch: one per HTTP request, released
	// when the response is written.
	{"internal/gateway", "GetTransBuf"}: {"call its Release method", releaseMethod},
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFunc(pass, fn)
		}
	}
	return nil
}

// checkFunc applies the invariant to one function body. Closures nested
// in the body are scanned as part of it, not separately: a goroutine
// that releases the value it captured satisfies the acquiring function.
func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl) {
	parents := parentMap(fn)

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		suffix, name, ob, ok := acquirerOf(pass.TypesInfo, call)
		if !ok {
			return true
		}
		qualified := lastSegment(suffix) + "." + name

		switch p := parentSkippingParens(parents, call).(type) {
		case *ast.AssignStmt:
			vars, dropped := boundVars(pass, p, call)
			if dropped {
				pass.Reportf(call.Pos(),
					"result of %s is discarded; %s or hand ownership off explicitly", qualified, ob.msg)
				return true
			}
			for _, v := range vars {
				if !hasReleaseOrTransfer(pass, fn, parents, v, ob.releases) {
					pass.Reportf(call.Pos(),
						"result of %s is neither released nor transferred in this function; %s on every path, or move ownership out (return/store/pass it)", qualified, ob.msg)
				}
			}
		case *ast.ValueSpec:
			for _, id := range p.Names {
				v := trackableObj(pass, id)
				if v == nil {
					continue
				}
				if !hasReleaseOrTransfer(pass, fn, parents, v, ob.releases) {
					pass.Reportf(call.Pos(),
						"result of %s is neither released nor transferred in this function; %s on every path, or move ownership out (return/store/pass it)", qualified, ob.msg)
				}
			}
		case *ast.ExprStmt:
			pass.Reportf(call.Pos(),
				"result of %s is discarded; %s or hand ownership off explicitly", qualified, ob.msg)
		default:
			// The acquire feeds straight into a return, call argument,
			// composite literal, or channel send: ownership transfers
			// at the acquire site itself.
		}
		return true
	})
}

// acquirerOf reports whether call invokes one of the tracked pooled
// acquire functions or methods. Methods match under their receiver
// type's name: "ObjectRef.CallAsync".
func acquirerOf(info *types.Info, call *ast.CallExpr) (suffix, name string, ob obligation, ok bool) {
	f := analysis.FuncOf(info, call)
	if f == nil || f.Pkg() == nil {
		return "", "", obligation{}, false
	}
	suffix = pathSuffix(f.Pkg().Path())
	name = f.Name()
	if recv := f.Type().(*types.Signature).Recv(); recv != nil {
		rt := recv.Type()
		if p, isPtr := rt.(*types.Pointer); isPtr {
			rt = p.Elem()
		}
		named, isNamed := rt.(*types.Named)
		if !isNamed {
			return "", "", obligation{}, false
		}
		name = named.Obj().Name() + "." + name
	}
	ob, ok = acquirers[[2]string{suffix, name}]
	return suffix, name, ob, ok
}

// boundVars resolves the variables an assignment binds the acquire call
// to. dropped reports an assignment that discards the value entirely
// (every interesting position is blank). Error-typed results of tuple
// returns are not tracked; a non-identifier LHS (field, index) is an
// ownership transfer at the acquire site and yields no tracked vars.
func boundVars(pass *analysis.Pass, as *ast.AssignStmt, call *ast.CallExpr) (vars []*types.Var, dropped bool) {
	// Which RHS position is the call? With one RHS and several LHS the
	// call's tuple spreads over all of them.
	lhs := as.Lhs
	if len(as.Rhs) == len(as.Lhs) {
		for i, r := range as.Rhs {
			if ast.Unparen(r) == call {
				lhs = as.Lhs[i : i+1]
				break
			}
		}
	}
	sawValue := false
	for _, l := range lhs {
		id, ok := ast.Unparen(l).(*ast.Ident)
		if !ok {
			return nil, false // stored through a field/index: transferred
		}
		if v := trackableObj(pass, id); v != nil {
			vars = append(vars, v)
			sawValue = true
		} else if id.Name != "_" {
			sawValue = sawValue || !isErrorIdent(pass, id)
		}
	}
	return vars, !sawValue
}

// trackableObj returns the *types.Var an identifier denotes when it is
// worth tracking: a named local whose type is not error. Blank and
// error-position identifiers return nil.
func trackableObj(pass *analysis.Pass, id *ast.Ident) *types.Var {
	if id.Name == "_" {
		return nil
	}
	obj := pass.TypesInfo.Defs[id]
	if obj == nil {
		obj = pass.TypesInfo.Uses[id]
	}
	v, ok := obj.(*types.Var)
	if !ok || isErrorType(v.Type()) {
		return nil
	}
	return v
}

func isErrorIdent(pass *analysis.Pass, id *ast.Ident) bool {
	obj := pass.TypesInfo.Defs[id]
	if obj == nil {
		obj = pass.TypesInfo.Uses[id]
	}
	return obj != nil && isErrorType(obj.Type())
}

func isErrorType(t types.Type) bool {
	return t != nil && t.String() == "error"
}

// hasReleaseOrTransfer scans every use of v in fn (closures included)
// and reports whether any of them releases the value (calls one of the
// acquirer's releasing methods) or moves its ownership out of the
// function.
func hasReleaseOrTransfer(pass *analysis.Pass, fn *ast.FuncDecl, parents map[ast.Node]ast.Node, v *types.Var, releases map[string]bool) bool {
	found := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok || pass.TypesInfo.Uses[id] != v {
			return true
		}
		if releasesOrTransfers(pass, parents, id, releases) {
			found = true
		}
		return true
	})
	return found
}

// releasesOrTransfers classifies one use of a tracked variable by its
// syntactic position.
func releasesOrTransfers(pass *analysis.Pass, parents map[ast.Node]ast.Node, id *ast.Ident, releases map[string]bool) bool {
	switch p := parentSkippingParens(parents, id).(type) {
	case *ast.SelectorExpr:
		// x.Release() (or, per acquirer, x.Wait()/x.Cancel()) is a
		// release; x.Field and other x.Method() calls are reads that
		// neither release nor move the value.
		if call, ok := parentSkippingParens(parents, p).(*ast.CallExpr); ok &&
			ast.Unparen(call.Fun) == p && releases[p.Sel.Name] {
			return true
		}
		return false
	case *ast.CallExpr:
		// Appearing among a call's arguments hands the value to the
		// callee (bufpool.Put is simply the releasing special case).
		for _, a := range p.Args {
			if ast.Unparen(a) == id {
				return true
			}
		}
		return false
	case *ast.ReturnStmt:
		return true
	case *ast.AssignStmt:
		for _, r := range p.Rhs {
			if ast.Unparen(r) != id {
				continue
			}
			// Aliasing or storing the value moves ownership — unless
			// every destination is blank (`_ = x` is a pure read).
			for _, l := range p.Lhs {
				if lid, ok := ast.Unparen(l).(*ast.Ident); !ok || lid.Name != "_" {
					return true
				}
			}
		}
		return false
	case *ast.ValueSpec:
		for _, val := range p.Values {
			if ast.Unparen(val) == id {
				return true
			}
		}
		return false
	case *ast.CompositeLit, *ast.KeyValueExpr:
		return true
	case *ast.SendStmt:
		return ast.Unparen(p.Value) == id
	case *ast.UnaryExpr:
		return p.Op.String() == "&"
	}
	return false
}

// parentMap records each node's parent within fn.
func parentMap(fn *ast.FuncDecl) map[ast.Node]ast.Node {
	parents := make(map[ast.Node]ast.Node)
	var stack []ast.Node
	ast.Inspect(fn, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return false
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}

// parentSkippingParens returns n's nearest non-paren ancestor.
func parentSkippingParens(parents map[ast.Node]ast.Node, n ast.Node) ast.Node {
	p := parents[n]
	for {
		pe, ok := p.(*ast.ParenExpr)
		if !ok {
			return p
		}
		p = parents[pe]
	}
}

// pathSuffix normalises a package path to its trailing internal/<pkg>
// segment so real corbalc packages and fixture stand-ins compare equal.
func pathSuffix(pkg string) string {
	if i := strings.Index(pkg, "internal/"); i >= 0 {
		return pkg[i:]
	}
	return pkg
}

// lastSegment returns the final path element ("internal/bufpool" ->
// "bufpool") for compact diagnostics.
func lastSegment(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

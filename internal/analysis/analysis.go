// Package analysis is a lightweight, dependency-free re-implementation of
// the golang.org/x/tools/go/analysis API surface used by corbalc-lint.
//
// The container this repo builds in bakes the Go toolchain but no module
// cache, so the suite is built entirely on the standard library: packages
// are parsed with go/parser and type-checked with go/types using the
// stdlib source importer. The API mirrors x/tools (Analyzer, Pass,
// Diagnostic) closely enough that the analyzers could be ported to a real
// multichecker by swapping import paths.
//
// Suppression: a finding may be silenced with a directive comment on the
// flagged line or the line immediately above it:
//
//	//lint:ignore <analyzer-name> <reason>
//
// The name "all" suppresses every analyzer for that line. Directives with
// no reason are themselves reported, so suppressions stay accountable.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:ignore directives. It must be a valid Go identifier.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Run applies the analyzer to a single package.
	Run func(*Pass) error
	// Finish, if set, runs once per driver Run invocation after every
	// package has been analyzed. Whole-program analyzers accumulate
	// per-package facts in Pass.Batch.State and report their global
	// conclusions (e.g. lock-order cycles) here.
	Finish func(*Batch) error
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	PkgPath   string
	TypesInfo *types.Info

	// Batch is shared by every Pass of one analyzer across one driver
	// Run invocation; see Batch.
	Batch *Batch

	// Report delivers a diagnostic. Set by the driver.
	Report func(Diagnostic)
}

// Reportf reports a diagnostic at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Analyzer: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is a single finding.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// FuncOf resolves the *types.Func a call expression invokes, or nil for
// calls through function-typed variables, conversions, and builtins.
func FuncOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// IsPkgFunc reports whether call invokes the package-level function
// pkgPath.name (e.g. "time".Sleep).
func IsPkgFunc(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	f := FuncOf(info, call)
	return f != nil && f.Pkg() != nil && f.Pkg().Path() == pkgPath && f.Name() == name && f.Type().(*types.Signature).Recv() == nil
}

// ReceiverPkg returns the defining package path of a method call's
// receiver, or "" if call is not a resolvable method call.
func ReceiverPkg(info *types.Info, call *ast.CallExpr) string {
	f := FuncOf(info, call)
	if f == nil || f.Pkg() == nil {
		return ""
	}
	if f.Type().(*types.Signature).Recv() == nil {
		return ""
	}
	return f.Pkg().Path()
}

package errpropagation_test

import (
	"testing"

	"corbalc/internal/analysis/analysistest"
	"corbalc/internal/analysis/errpropagation"
)

func TestErrPropagation(t *testing.T) {
	analysistest.Run(t, errpropagation.Analyzer, "a")
}

// Package a is the errpropagation fixture.
package a

import (
	"bytes"
	"fmt"
	"io"
	"os"
)

type stream struct{ w io.Writer }

func (s *stream) send(b []byte) error {
	_, err := s.w.Write(b)
	return err
}

func (s *stream) close() error { return nil }

// Bad: a dropped send error desynchronises the stream.
func badDroppedSend(s *stream, b []byte) {
	s.send(b) // want `error result of s\.send\(\) is silently dropped`
}

// Bad: package-level functions too.
func badDroppedRemove(path string) {
	os.Remove(path) // want `error result of os\.Remove\(\) is silently dropped`
}

// Bad: calls through function values are still errors on the floor.
func badFuncValue(f func() error) {
	f() // want `error result of f\(\) is silently dropped`
}

// Good: explicit discard is visible in review.
func goodExplicitDiscard(s *stream, b []byte) {
	_ = s.send(b)
}

// Good: handled.
func goodHandled(s *stream, b []byte) error {
	if err := s.send(b); err != nil {
		return err
	}
	return nil
}

// Good: fmt print helpers and in-memory writers are exempt.
func goodExempt(buf *bytes.Buffer) {
	fmt.Println("status")
	fmt.Fprintf(os.Stderr, "warn\n")
	buf.WriteString("x")
}

// Good: deferred close is conventional shutdown shorthand.
func goodDeferClose(s *stream) {
	defer s.close()
}

// Good: non-error results are not this analyzer's business.
func goodNonError(buf *bytes.Buffer) {
	buf.Len()
}

// Suppressed: an acknowledged drop stays silent.
func suppressedDrop(s *stream, b []byte) {
	//lint:ignore errpropagation best-effort telemetry write, loss is acceptable
	s.send(b)
}

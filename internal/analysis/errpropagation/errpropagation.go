// Package errpropagation flags call statements that silently discard an
// error result.
//
// On the GIOP/IIOP hot path an ignored short write leaves the peer
// mid-message: the next header read desynchronises and the connection
// is poisoned, which the paper's node-failure model treats as a crash of
// the whole peer. The analyzer requires every dropped error to be
// explicit: handle it, return it, or assign it to _ so the discard is
// visible in review.
//
// A call statement is flagged when the callee's last result is an
// error and the statement ignores all results. fmt print helpers and
// the never-failing bytes.Buffer / strings.Builder writers are exempt.
// Deferred and go-routine calls are not flagged (a `defer f.Close()` is
// conventional shutdown shorthand).
package errpropagation

import (
	"go/ast"
	"go/types"
	"strings"

	"corbalc/internal/analysis"
)

// Analyzer is the errpropagation analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "errpropagation",
	Doc:  "flag call statements that silently drop an error result",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	errType := types.Universe.Lookup("error").Type()
	analysis.InspectFiles(pass, func(n ast.Node) bool {
		stmt, ok := n.(*ast.ExprStmt)
		if !ok {
			return true
		}
		call, ok := stmt.X.(*ast.CallExpr)
		if !ok {
			return true
		}
		tv, ok := pass.TypesInfo.Types[call]
		if !ok || !returnsError(tv.Type, errType) || exempt(pass.TypesInfo, call) {
			return true
		}
		pass.Reportf(call.Pos(), "error result of %s() is silently dropped; handle it or assign it to _",
			types.ExprString(call.Fun))
		return true
	})
	return nil
}

// returnsError reports whether a call result type ends in error.
func returnsError(t types.Type, errType types.Type) bool {
	if t == nil {
		return false
	}
	if tup, ok := t.(*types.Tuple); ok {
		if tup.Len() == 0 {
			return false
		}
		t = tup.At(tup.Len() - 1).Type()
	}
	return types.Identical(t, errType)
}

// exempt reports callees whose error is conventionally ignorable:
// fmt print helpers and in-memory writers that document err == nil.
func exempt(info *types.Info, call *ast.CallExpr) bool {
	f := analysis.FuncOf(info, call)
	if f == nil || f.Pkg() == nil {
		return false
	}
	pkg, name := f.Pkg().Path(), f.Name()
	switch {
	case pkg == "fmt" && (strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fprint")):
		return true
	case (pkg == "bytes" || pkg == "strings") && f.Type().(*types.Signature).Recv() != nil:
		return true
	}
	return false
}

// Package pub simulates a non-internal package (cmd/, examples/, the
// facade): goroutine lifetimes are not enforced outside internal/.
package pub

import "time"

func Spawn() {
	go func() {
		for {
			time.Sleep(time.Second)
		}
	}()
}

// Package a is the goroutinelifetime fixture for internal/ packages:
// spawns with no lifetime tie (flagged) and each shape that counts as
// tracked.
package a

import (
	"context"
	"sync"
	"time"
)

type server struct {
	wg    sync.WaitGroup
	stop  chan struct{}
	tasks chan int
}

// Bad: the closure just loops forever; nothing bounds it.
func badForever() {
	go func() { // want `goroutine is not tied to a tracked lifetime`
		for {
			time.Sleep(time.Second)
		}
	}()
}

// Bad: a package function with no tie in its body.
func badHelperSpawn() {
	go untracked() // want `goroutine is not tied to a tracked lifetime: untracked contains no`
}

func untracked() {
	for i := 0; i < 1000; i++ {
		time.Sleep(time.Millisecond)
	}
}

// Bad: a method spawn whose body has no tie.
func (s *server) badMethodSpawn() {
	go s.spin() // want `goroutine is not tied to a tracked lifetime: spin contains no`
}

func (s *server) spin() {
	for {
		_ = len(s.tasks)
	}
}

// Bad: a cross-package function body the analyzer cannot see.
func badCrossPackage(f func()) {
	go context.Background().Done() // want `whose body this package cannot see`
	go f()                         // want `goroutine spawns a function value`
}

// Bad: a send-only select is not a lifetime tie.
func badSendOnlySelect(out chan int) {
	go func() { // want `goroutine is not tied to a tracked lifetime`
		for {
			select {
			case out <- 1:
			default:
			}
		}
	}()
}

// Good: WaitGroup-tracked closure.
func (s *server) goodWaitGroup() {
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for i := 0; i < 10; i++ {
			_ = i
		}
	}()
}

// Good: WaitGroup-tracked method (Done inside the method body).
func (s *server) goodWaitGroupMethod() {
	s.wg.Add(1)
	go s.worker()
}

func (s *server) worker() {
	defer s.wg.Done()
	for range s.tasks {
	}
}

// Good: lifetime-context select.
func goodCtxSelect(ctx context.Context, tick <-chan time.Time) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case <-tick:
			}
		}
	}()
}

// Good: bare stop-channel receive.
func (s *server) goodBareReceive() {
	go func() {
		<-s.stop
	}()
}

// Good: range over a channel, terminated by close.
func (s *server) goodRange() {
	go func() {
		for t := range s.tasks {
			_ = t
		}
	}()
}

// Good: an audited daemon.
func goodDaemon() {
	//lint:ignore goroutinelifetime process-lifetime metrics pump, exits with the test binary
	go untracked()
}

// The tie must be in the spawned goroutine itself: an inner spawn's
// select does not track the outer goroutine.
func badOuterInnerConfusion(ctx context.Context) {
	go func() { // want `goroutine is not tied to a tracked lifetime`
		go func() {
			<-ctx.Done()
		}()
		for {
			time.Sleep(time.Second)
		}
	}()
}

package goroutinelifetime_test

import (
	"testing"

	"corbalc/internal/analysis/analysistest"
	"corbalc/internal/analysis/goroutinelifetime"
)

func TestGoroutineLifetime(t *testing.T) {
	// "internal/a" simulates a corbalc/internal package (spawns
	// checked); "pub" simulates cmd/examples/facade (exempt).
	analysistest.Run(t, goroutinelifetime.Analyzer, "internal/a", "pub")
}

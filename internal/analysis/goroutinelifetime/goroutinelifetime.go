// Package goroutinelifetime enforces that every goroutine spawned
// inside internal/ is tied to a tracked lifetime.
//
// The concurrent substrate (striped pools, bounded dispatch, write
// coalescing, reapers, gossip loops) is leak-checked at runtime by
// internal/leak, but only in the test suites that opt in; a `go`
// statement added outside those suites can leak silently until a storm
// test happens to cover it. This analyzer makes the discipline
// structural: the spawned function itself must demonstrably terminate
// with its owner, by containing at least one of
//
//   - a (*sync.WaitGroup).Done call (the owner Adds before spawning and
//     Waits on teardown),
//   - a channel receive — a bare `<-stop`, a select with a receive arm
//     (lifetime-context selects on ctx.Done() are the common shape), or
//     a range over a channel (terminated by close) —
//
// checked in the goroutine's own body, including deferred and inline
// closures but not nested `go` spawns (each spawn is checked on its
// own). A spawn whose body the analyzer cannot see — a cross-package
// function, a method of another package's type, or a function-typed
// variable — is flagged too: wrap it in a local closure that carries
// the lifetime tie.
//
// Genuine daemons whose lifetime is the process (or a resource the
// analyzer cannot model, like a socket whose Close unblocks the read
// loop) must be annotated:
//
//	//lint:ignore goroutinelifetime <why this goroutine cannot leak>
//
// keeping every untracked goroutine in the tree auditable by grep.
package goroutinelifetime

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"corbalc/internal/analysis"
)

// Analyzer is the goroutinelifetime analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "goroutinelifetime",
	Doc:  "require every goroutine spawned in internal/ to be tied to a tracked lifetime (WaitGroup, lifetime channel, or audited daemon)",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if !strings.Contains(pass.PkgPath+"/", "internal/") {
		// The discipline binds the runtime substrate; cmd/ and examples/
		// spawn process-lifetime helpers freely.
		return nil
	}
	decls := declBodies(pass)
	analysis.InspectFiles(pass, func(n ast.Node) bool {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		body, how := spawnedBody(pass, g.Call, decls)
		if body == nil {
			pass.Reportf(g.Pos(),
				"goroutine spawns %s, whose body this package cannot see; wrap the spawn in a local closure carrying the lifetime tie (WaitGroup.Done or lifetime-channel receive)", how)
			return true
		}
		if !hasLifetimeTie(pass.TypesInfo, body) {
			pass.Reportf(g.Pos(),
				"goroutine is not tied to a tracked lifetime: %s contains no WaitGroup.Done, channel receive/select, or range-over-channel; tie it to its owner's WaitGroup or stop channel, or annotate an audited daemon with //lint:ignore goroutinelifetime <reason>", how)
		}
		return true
	})
	return nil
}

// declBodies indexes this package's function and method declarations by
// their types.Func object, so `go pkgFunc()` and `go recv.method()`
// spawns resolve to a checkable body.
func declBodies(pass *analysis.Pass) map[*types.Func]*ast.BlockStmt {
	decls := map[*types.Func]*ast.BlockStmt{}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				decls[fn] = fd.Body
			}
		}
	}
	return decls
}

// spawnedBody resolves the body of the function a go statement runs,
// along with a description of the spawn shape for diagnostics. A nil
// body means the spawn is not checkable from this package.
func spawnedBody(pass *analysis.Pass, call *ast.CallExpr, decls map[*types.Func]*ast.BlockStmt) (*ast.BlockStmt, string) {
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		return lit.Body, "the spawned closure"
	}
	f := analysis.FuncOf(pass.TypesInfo, call)
	if f == nil {
		return nil, "a function value"
	}
	if body, ok := decls[f]; ok {
		return body, f.Name()
	}
	return nil, f.FullName()
}

// hasLifetimeTie walks the spawned body (skipping nested go spawns,
// which are audited separately) looking for a construct that bounds the
// goroutine's lifetime.
func hasLifetimeTie(info *types.Info, body *ast.BlockStmt) bool {
	tied := false
	ast.Inspect(body, func(n ast.Node) bool {
		if tied {
			return false
		}
		switch v := n.(type) {
		case *ast.GoStmt:
			// A nested spawn's ties belong to the nested goroutine.
			return false
		case *ast.UnaryExpr:
			if v.Op == token.ARROW {
				tied = true
				return false
			}
		case *ast.SelectStmt:
			for _, cl := range v.Body.List {
				if comm, ok := cl.(*ast.CommClause); ok && commReceives(comm) {
					tied = true
					return false
				}
			}
		case *ast.RangeStmt:
			if t := info.TypeOf(v.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					tied = true
					return false
				}
			}
		case *ast.CallExpr:
			if isWaitGroupDone(info, v) {
				tied = true
				return false
			}
		}
		return true
	})
	return tied
}

// commReceives reports whether a select clause's communication is a
// receive (nil Comm is the default clause; sends do not bound a
// lifetime).
func commReceives(c *ast.CommClause) bool {
	switch s := c.Comm.(type) {
	case *ast.ExprStmt:
		u, ok := ast.Unparen(s.X).(*ast.UnaryExpr)
		return ok && u.Op == token.ARROW
	case *ast.AssignStmt:
		if len(s.Rhs) == 1 {
			u, ok := ast.Unparen(s.Rhs[0]).(*ast.UnaryExpr)
			return ok && u.Op == token.ARROW
		}
	}
	return false
}

// isWaitGroupDone reports whether call is (*sync.WaitGroup).Done.
func isWaitGroupDone(info *types.Info, call *ast.CallExpr) bool {
	f := analysis.FuncOf(info, call)
	if f == nil || f.Pkg() == nil || f.Pkg().Path() != "sync" || f.Name() != "Done" {
		return false
	}
	sig := f.Type().(*types.Signature)
	if sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "WaitGroup"
}

package events

// High-fan-out benchmark: one publisher, N subscribers, measuring
// delivered events per second (each push counts once per subscriber).
// BENCH_6 gates the subs=10000 case at 100k events/s — the "100k+
// subscriber fan-out" target of DESIGN.md §12.

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

func benchmarkFanOut(b *testing.B, subs int) {
	ch := NewChannelConfig("IDL:bench/E:1.0", Config{Depth: 256, Policy: Block})
	defer ch.Close()

	var delivered atomic.Int64
	for i := 0; i < subs; i++ {
		defer ch.SubscribeBatch("s", func(batch []Event) {
			delivered.Add(int64(len(batch)))
		})()
	}

	b.ReportAllocs()
	b.ResetTimer()
	start := time.Now()
	ev := Event{Source: "bench", Data: []byte("payload")}
	for i := 0; i < b.N; i++ {
		if err := ch.Push(ev); err != nil {
			b.Fatal(err)
		}
	}
	// The fan-out isn't done until every subscriber drained its queue.
	want := int64(b.N) * int64(subs)
	for delivered.Load() < want {
		time.Sleep(50 * time.Microsecond)
	}
	elapsed := time.Since(start)
	b.StopTimer()
	b.ReportMetric(float64(want)/elapsed.Seconds(), "events/s")
	b.ReportMetric(float64(elapsed.Nanoseconds())/float64(b.N), "ns/push-fanout")
}

func BenchmarkEventFanout(b *testing.B) {
	for _, subs := range []int{100, 1000, 10000} {
		b.Run(fmt.Sprintf("subs=%d", subs), func(b *testing.B) {
			benchmarkFanOut(b, subs)
		})
	}
}

// Package events implements the asynchronous communication substrate of
// CORBA-LC (paper §2.1.2): for each event kind produced by a component,
// the framework opens a push-model event channel; consumers subscribe to
// express interest in that kind.
//
// A Hub manages one Channel per event type ID. The channel is built for
// fan-out: publication walks a copy-on-write subscriber list (no lock,
// no allocation on the push path), and delivery to each subscriber is
// decoupled through a bounded per-subscriber queue drained by a
// dedicated goroutine — one slow consumer cannot stall producers or its
// peers. The overflow policy is explicit (block, drop oldest, drop
// newest) and observable (Dropped), and drains are batched: a delivery
// loop takes everything queued in one lock acquisition and can hand the
// whole run to a BatchConsumer, which is how remote subscribers ride the
// transport's write-coalescing layer one batch at a time.
package events

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"
)

// Event is one occurrence pushed through a channel. The payload is
// opaque to the framework (producers typically CDR-encode it against the
// event's IDL type).
type Event struct {
	// TypeID is the event kind's repository ID, e.g.
	// "IDL:media/FrameReady:1.0".
	TypeID string
	// Source names the emitting component instance.
	Source string
	// Seq is the channel-assigned publication sequence number.
	Seq uint64
	// Data is the payload.
	Data []byte
}

// Consumer receives events one at a time; it runs on the subscriber's
// delivery goroutine, in publication order.
type Consumer func(Event)

// BatchConsumer receives a run of queued events in one call — whatever
// the delivery loop drained in one pass, at most the channel's MaxBatch.
// The slice is reused between calls: a consumer that retains events past
// its return must copy them.
type BatchConsumer func([]Event)

// OverflowPolicy selects behaviour when a subscriber queue is full.
type OverflowPolicy int

// Overflow policies.
const (
	// Block makes Push wait for space (backpressure).
	Block OverflowPolicy = iota
	// DropOldest discards the oldest queued event to admit the new one.
	DropOldest
	// DropNewest discards the event being pushed, keeping the queue.
	DropNewest
)

// ErrClosed reports publication on a closed channel.
var ErrClosed = errors.New("events: channel closed")

// DefaultMaxBatch bounds one delivery-loop drain when Config.MaxBatch is
// zero.
const DefaultMaxBatch = 64

// Config tunes a channel (and, via the hub, every channel of a node).
type Config struct {
	// Depth is the per-subscriber queue capacity (minimum 1).
	Depth int
	// Policy selects the overflow behaviour on a full subscriber queue.
	Policy OverflowPolicy
	// MaxBatch bounds how many events one delivery pass drains (and the
	// largest slice a BatchConsumer sees). Zero means DefaultMaxBatch.
	MaxBatch int
	// BatchWindow makes a batch subscriber's delivery loop pause after
	// draining the queue dry, so a trickle of events coalesces into
	// window-sized batches instead of N single-event deliveries. Zero
	// delivers immediately. Per-event consumers ignore it.
	BatchWindow time.Duration
}

// withDefaults resolves the zero values.
func (c Config) withDefaults() Config {
	if c.Depth < 1 {
		c.Depth = 1
	}
	if c.MaxBatch < 1 {
		c.MaxBatch = DefaultMaxBatch
	}
	return c
}

// Channel is one push event channel.
type Channel struct {
	typeID string
	cfg    Config

	// subs is the copy-on-write subscriber list Push reads lock-free;
	// nil marks the channel closed. Mutations happen under mu.
	subs atomic.Pointer[[]*subscriber]

	mu     sync.Mutex
	closed bool
	seq    atomic.Uint64
	wg     sync.WaitGroup // one count per live deliverLoop

	published atomic.Uint64
	delivered atomic.Uint64
	dropped   atomic.Uint64
}

type subscriber struct {
	name string
	fn   Consumer      // exactly one of fn
	bfn  BatchConsumer // and bfn is set

	mu   sync.Mutex
	cond sync.Cond
	// ring buffer
	buf    []Event
	start  int
	count  int
	closed bool
}

// NewChannel creates a channel for one event kind. depth is the
// per-subscriber queue capacity (minimum 1).
func NewChannel(typeID string, depth int, policy OverflowPolicy) *Channel {
	return NewChannelConfig(typeID, Config{Depth: depth, Policy: policy})
}

// NewChannelConfig creates a channel with the full set of knobs.
func NewChannelConfig(typeID string, cfg Config) *Channel {
	c := &Channel{typeID: typeID, cfg: cfg.withDefaults()}
	empty := make([]*subscriber, 0)
	c.subs.Store(&empty)
	return c
}

// TypeID returns the event kind this channel carries.
func (c *Channel) TypeID() string { return c.typeID }

// Stats reports lifetime counters: published events, deliveries made
// (one per event per subscriber) and deliveries dropped by overflow or
// teardown.
func (c *Channel) Stats() (published, delivered, dropped uint64) {
	return c.published.Load(), c.delivered.Load(), c.dropped.Load()
}

// Dropped reports how many deliveries the channel discarded: overflow
// under DropOldest/DropNewest, plus events refused by a closing
// subscriber. A non-zero value is the observable cost of the configured
// drop policy.
func (c *Channel) Dropped() uint64 { return c.dropped.Load() }

// Subscribe registers a per-event consumer and returns a cancel
// function.
func (c *Channel) Subscribe(name string, fn Consumer) (cancel func()) {
	return c.subscribe(&subscriber{name: name, fn: fn})
}

// SubscribeBatch registers a batch consumer: the delivery loop hands it
// whole drained runs (up to MaxBatch events), coalescing trickle into
// batches when BatchWindow is set. Returns a cancel function.
func (c *Channel) SubscribeBatch(name string, fn BatchConsumer) (cancel func()) {
	return c.subscribe(&subscriber{name: name, bfn: fn})
}

func (c *Channel) subscribe(s *subscriber) (cancel func()) {
	s.cond.L = &s.mu
	s.buf = make([]Event, c.cfg.Depth)

	if !c.attach(s) {
		return func() {}
	}
	go c.deliverLoop(s)

	var once sync.Once
	return func() {
		once.Do(func() {
			c.mu.Lock()
			if !c.closed {
				c.editSubs(func(subs []*subscriber) []*subscriber {
					out := make([]*subscriber, 0, len(subs))
					for _, x := range subs {
						if x != s {
							out = append(out, x)
						}
					}
					return out
				})
			}
			c.mu.Unlock()
			s.close()
		})
	}
}

// attach adds s to the live subscriber list and charges its delivery
// loop to the channel's WaitGroup; false if the channel is closed.
func (c *Channel) attach(s *subscriber) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return false
	}
	c.editSubs(func(subs []*subscriber) []*subscriber {
		return append(subs, s)
	})
	c.wg.Add(1)
	return true
}

// editSubs swaps in an edited copy of the subscriber list. Caller holds
// c.mu (which serialises writers; Push readers are lock-free).
func (c *Channel) editSubs(edit func([]*subscriber) []*subscriber) {
	cur := c.subs.Load()
	if cur == nil {
		return
	}
	next := edit(append([]*subscriber(nil), (*cur)...))
	c.subs.Store(&next)
}

// SubscriberCount reports the current number of subscribers.
func (c *Channel) SubscriberCount() int {
	if subs := c.subs.Load(); subs != nil {
		return len(*subs)
	}
	return 0
}

// Push publishes an event to every current subscriber. The event's Seq
// and TypeID fields are set by the channel. The subscriber list is read
// lock-free and nothing is allocated: at fan-out rates the push path is
// the producer's hot loop.
func (c *Channel) Push(ev Event) error {
	subs := c.subs.Load()
	if subs == nil {
		return ErrClosed
	}
	ev.TypeID = c.typeID
	ev.Seq = c.seq.Add(1)
	c.published.Add(1)
	for _, s := range *subs {
		if d := s.enqueue(ev, c.cfg.Policy); d != 0 {
			c.dropped.Add(d)
		}
	}
	return nil
}

// detachAll marks the channel closed and hands back the subscribers to
// shut down; nil when the channel was already closed.
func (c *Channel) detachAll() []*subscriber {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	subs := c.subs.Load()
	c.subs.Store(nil)
	if subs == nil {
		return nil
	}
	return *subs
}

// Close tears the channel down and waits for the subscribers' delivery
// loops to drain their queues and exit. Only the call that actually
// closes the channel waits; once teardown is underway, Close from any
// goroutine (including a consumer callback) returns immediately. A
// consumer callback must not be the one to initiate Close — it would
// wait on its own delivery loop.
func (c *Channel) Close() {
	subs := c.detachAll()
	if subs == nil {
		return
	}
	for _, s := range subs {
		s.close()
	}
	c.wg.Wait()
}

// enqueue admits ev to the subscriber queue under the channel's overflow
// policy, reporting how many deliveries were dropped to do so: the
// displaced event under DropOldest, the pushed event under DropNewest
// (or when the subscriber is closing).
func (s *subscriber) enqueue(ev Event, policy OverflowPolicy) (dropped uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.count == len(s.buf) && !s.closed {
		switch policy {
		case DropOldest:
			s.start = (s.start + 1) % len(s.buf)
			s.count--
			dropped++
		case DropNewest:
			return 1
		default: // Block: backpressure the producer
			s.cond.Wait()
			continue
		}
		break
	}
	if s.closed {
		return dropped + 1
	}
	s.buf[(s.start+s.count)%len(s.buf)] = ev
	s.count++
	s.cond.Broadcast()
	return dropped
}

func (s *subscriber) close() {
	s.mu.Lock()
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
}

// take blocks until events are buffered (returned even after close, so
// the queue drains) and moves up to len(dst) of them into dst in one
// lock acquisition; ok is false once the subscriber closed empty.
func (s *subscriber) take(dst []Event) (n int, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.count == 0 && !s.closed {
		s.cond.Wait()
	}
	if s.count == 0 {
		return 0, false
	}
	n = min(s.count, len(dst))
	for i := 0; i < n; i++ {
		dst[i] = s.buf[s.start]
		s.buf[s.start] = Event{} // do not pin payloads in the ring
		s.start = (s.start + 1) % len(s.buf)
	}
	s.count -= n
	s.cond.Broadcast()
	return n, true
}

// drained reports an empty, still-open queue (the batch-window probe).
func (s *subscriber) drained() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.count == 0 && !s.closed
}

// deliverLoop drains the subscriber queue in batches: each pass takes
// everything buffered (bounded by MaxBatch) in one lock acquisition and
// hands it to the consumer — whole runs to a BatchConsumer, in-order
// single calls otherwise.
func (c *Channel) deliverLoop(s *subscriber) {
	defer c.wg.Done()
	batch := make([]Event, c.cfg.MaxBatch)
	for {
		n, ok := s.take(batch)
		if !ok {
			return
		}
		c.delivered.Add(uint64(n))
		if s.bfn != nil {
			s.bfn(batch[:n])
			if c.cfg.BatchWindow > 0 && s.drained() {
				// Let a trickle accumulate into the next batch instead
				// of waking per event; teardown pays at most one window.
				time.Sleep(c.cfg.BatchWindow)
			}
		} else {
			for _, ev := range batch[:n] {
				s.fn(ev)
			}
		}
	}
}

// ChannelStats is one channel's counters, as reported by a hub.
type ChannelStats struct {
	TypeID      string
	Published   uint64
	Delivered   uint64
	Dropped     uint64
	Subscribers int
}

// Hub manages the per-event-kind channels of one node's framework.
type Hub struct {
	mu       sync.Mutex
	channels map[string]*Channel
	cfg      Config
}

// NewHub returns a hub creating channels with the given queue depth and
// overflow policy.
func NewHub(depth int, policy OverflowPolicy) *Hub {
	return NewHubConfig(Config{Depth: depth, Policy: policy})
}

// NewHubConfig returns a hub creating channels with the full set of
// knobs.
func NewHubConfig(cfg Config) *Hub {
	return &Hub{channels: make(map[string]*Channel), cfg: cfg.withDefaults()}
}

// Channel returns (creating on first use) the channel for an event kind.
func (h *Hub) Channel(typeID string) *Channel {
	h.mu.Lock()
	defer h.mu.Unlock()
	c, ok := h.channels[typeID]
	if !ok {
		c = NewChannelConfig(typeID, h.cfg)
		h.channels[typeID] = c
	}
	return c
}

// Kinds lists the event kinds with open channels.
func (h *Hub) Kinds() []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]string, 0, len(h.channels))
	for k := range h.channels {
		out = append(out, k)
	}
	return out
}

// Dropped reports the total deliveries dropped across every channel —
// the hub-level view of the drop policy's cost.
func (h *Hub) Dropped() uint64 {
	var total uint64
	for _, c := range h.snapshot() {
		total += c.Dropped()
	}
	return total
}

// ChannelStats reports every channel's counters (order unspecified).
func (h *Hub) ChannelStats() []ChannelStats {
	chans := h.snapshot()
	out := make([]ChannelStats, 0, len(chans))
	for _, c := range chans {
		pub, del, drop := c.Stats()
		out = append(out, ChannelStats{
			TypeID:      c.TypeID(),
			Published:   pub,
			Delivered:   del,
			Dropped:     drop,
			Subscribers: c.SubscriberCount(),
		})
	}
	return out
}

// snapshot lists the current channels.
func (h *Hub) snapshot() []*Channel {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]*Channel, 0, len(h.channels))
	for _, c := range h.channels {
		out = append(out, c)
	}
	return out
}

// Remove closes and forgets one channel (a no-op when absent), so hubs
// keyed by peer identity — the cohesion gossip plane keeps one channel
// per destination — reclaim queues and delivery goroutines under churn.
// The removed channel's counters leave the hub's totals with it.
func (h *Hub) Remove(typeID string) {
	h.mu.Lock()
	c := h.channels[typeID]
	delete(h.channels, typeID)
	h.mu.Unlock()
	if c != nil {
		c.Close()
	}
}

// Close closes every channel.
func (h *Hub) Close() {
	h.mu.Lock()
	chans := h.channels
	h.channels = make(map[string]*Channel)
	h.mu.Unlock()
	for _, c := range chans {
		c.Close()
	}
}

// Package events implements the asynchronous communication substrate of
// CORBA-LC (paper §2.1.2): for each event kind produced by a component,
// the framework opens a push-model event channel; consumers subscribe to
// express interest in that kind.
//
// A Hub manages one Channel per event type ID. Delivery to each
// subscriber is decoupled through a bounded per-subscriber queue drained
// by a dedicated goroutine, so one slow consumer cannot stall producers
// or its peers; the overflow policy is configurable (block vs drop
// oldest).
package events

import (
	"errors"
	"sync"
	"sync/atomic"
)

// Event is one occurrence pushed through a channel. The payload is
// opaque to the framework (producers typically CDR-encode it against the
// event's IDL type).
type Event struct {
	// TypeID is the event kind's repository ID, e.g.
	// "IDL:media/FrameReady:1.0".
	TypeID string
	// Source names the emitting component instance.
	Source string
	// Seq is the channel-assigned publication sequence number.
	Seq uint64
	// Data is the payload.
	Data []byte
}

// Consumer receives events; it runs on the subscriber's delivery
// goroutine, in publication order.
type Consumer func(Event)

// OverflowPolicy selects behaviour when a subscriber queue is full.
type OverflowPolicy int

// Overflow policies.
const (
	// Block makes Push wait for space (backpressure).
	Block OverflowPolicy = iota
	// DropOldest discards the oldest queued event to admit the new one.
	DropOldest
)

// ErrClosed reports publication on a closed channel.
var ErrClosed = errors.New("events: channel closed")

// Channel is one push event channel.
type Channel struct {
	typeID string
	policy OverflowPolicy
	depth  int

	mu     sync.Mutex
	subs   map[int]*subscriber
	nextID int
	closed bool
	seq    atomic.Uint64
	wg     sync.WaitGroup // one count per live deliverLoop

	published atomic.Uint64
	delivered atomic.Uint64
	dropped   atomic.Uint64
}

type subscriber struct {
	name string
	fn   Consumer
	mu   sync.Mutex
	cond *sync.Cond
	// ring buffer
	buf    []Event
	start  int
	count  int
	closed bool
}

// NewChannel creates a channel for one event kind. depth is the
// per-subscriber queue capacity (minimum 1).
func NewChannel(typeID string, depth int, policy OverflowPolicy) *Channel {
	if depth < 1 {
		depth = 1
	}
	return &Channel{typeID: typeID, policy: policy, depth: depth, subs: make(map[int]*subscriber)}
}

// TypeID returns the event kind this channel carries.
func (c *Channel) TypeID() string { return c.typeID }

// Stats reports lifetime counters: published events, deliveries made
// (one per event per subscriber) and deliveries dropped by overflow.
func (c *Channel) Stats() (published, delivered, dropped uint64) {
	return c.published.Load(), c.delivered.Load(), c.dropped.Load()
}

// addSubscriber registers s, returning its id, or false when the
// channel is already closed.
func (c *Channel) addSubscriber(s *subscriber) (int, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return 0, false
	}
	id := c.nextID
	c.nextID++
	c.subs[id] = s
	return id, true
}

// Subscribe registers a consumer and returns a cancel function.
func (c *Channel) Subscribe(name string, fn Consumer) (cancel func()) {
	s := &subscriber{name: name, fn: fn, buf: make([]Event, c.depth)}
	s.cond = sync.NewCond(&s.mu)
	id, ok := c.addSubscriber(s)
	if !ok {
		return func() {}
	}

	c.wg.Add(1)
	go c.deliverLoop(s)

	var once sync.Once
	return func() {
		once.Do(func() {
			c.mu.Lock()
			delete(c.subs, id)
			c.mu.Unlock()
			s.close()
		})
	}
}

// SubscriberCount reports the current number of subscribers.
func (c *Channel) SubscriberCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.subs)
}

// snapshotSubs returns the current subscriber set, or ErrClosed.
func (c *Channel) snapshotSubs() ([]*subscriber, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, ErrClosed
	}
	subs := make([]*subscriber, 0, len(c.subs))
	for _, s := range c.subs {
		subs = append(subs, s)
	}
	return subs, nil
}

// Push publishes an event to every current subscriber. The event's Seq
// and TypeID fields are set by the channel.
func (c *Channel) Push(ev Event) error {
	subs, err := c.snapshotSubs()
	if err != nil {
		return err
	}

	ev.TypeID = c.typeID
	ev.Seq = c.seq.Add(1)
	c.published.Add(1)
	for _, s := range subs {
		if s.enqueue(ev, c.policy) {
			c.delivered.Add(1)
		} else {
			c.dropped.Add(1)
		}
	}
	return nil
}

// detachAll marks the channel closed and hands back the subscribers to
// shut down; nil when the channel was already closed.
func (c *Channel) detachAll() map[int]*subscriber {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	subs := c.subs
	c.subs = make(map[int]*subscriber)
	return subs
}

// Close tears the channel down and waits for the subscribers' delivery
// loops to drain their queues and exit. Only the call that actually
// closes the channel waits; once teardown is underway, Close from any
// goroutine (including a consumer callback) returns immediately. A
// consumer callback must not be the one to initiate Close — it would
// wait on its own delivery loop.
func (c *Channel) Close() {
	subs := c.detachAll()
	if subs == nil {
		return
	}
	for _, s := range subs {
		s.close()
	}
	c.wg.Wait()
}

func (s *subscriber) enqueue(ev Event, policy OverflowPolicy) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.count == len(s.buf) && !s.closed {
		if policy == DropOldest {
			s.start = (s.start + 1) % len(s.buf)
			s.count--
			break
		}
		s.cond.Wait()
	}
	if s.closed {
		return false
	}
	s.buf[(s.start+s.count)%len(s.buf)] = ev
	s.count++
	s.cond.Broadcast()
	return true
}

func (s *subscriber) close() {
	s.mu.Lock()
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
}

// next blocks until an event is buffered (returned even after close, so
// the queue drains) or the subscriber closes empty.
func (s *subscriber) next() (Event, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.count == 0 && !s.closed {
		s.cond.Wait()
	}
	if s.count == 0 {
		return Event{}, false
	}
	ev := s.buf[s.start]
	s.start = (s.start + 1) % len(s.buf)
	s.count--
	s.cond.Broadcast()
	return ev, true
}

func (c *Channel) deliverLoop(s *subscriber) {
	defer c.wg.Done()
	for {
		ev, ok := s.next()
		if !ok {
			return
		}
		s.fn(ev)
	}
}

// Hub manages the per-event-kind channels of one node's framework.
type Hub struct {
	mu       sync.Mutex
	channels map[string]*Channel
	depth    int
	policy   OverflowPolicy
}

// NewHub returns a hub creating channels with the given queue depth and
// overflow policy.
func NewHub(depth int, policy OverflowPolicy) *Hub {
	return &Hub{channels: make(map[string]*Channel), depth: depth, policy: policy}
}

// Channel returns (creating on first use) the channel for an event kind.
func (h *Hub) Channel(typeID string) *Channel {
	h.mu.Lock()
	defer h.mu.Unlock()
	c, ok := h.channels[typeID]
	if !ok {
		c = NewChannel(typeID, h.depth, h.policy)
		h.channels[typeID] = c
	}
	return c
}

// Kinds lists the event kinds with open channels.
func (h *Hub) Kinds() []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]string, 0, len(h.channels))
	for k := range h.channels {
		out = append(out, k)
	}
	return out
}

// Close closes every channel.
func (h *Hub) Close() {
	h.mu.Lock()
	chans := h.channels
	h.channels = make(map[string]*Channel)
	h.mu.Unlock()
	for _, c := range chans {
		c.Close()
	}
}

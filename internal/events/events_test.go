package events

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"corbalc/internal/leak"
)

func collect(ch *Channel, name string, into *[]Event, mu *sync.Mutex, wg *sync.WaitGroup) func() {
	return ch.Subscribe(name, func(ev Event) {
		mu.Lock()
		*into = append(*into, ev)
		mu.Unlock()
		if wg != nil {
			wg.Done()
		}
	})
}

func TestPushDeliversInOrder(t *testing.T) {
	leak.Check(t)
	ch := NewChannel("IDL:test/E:1.0", 64, Block)
	defer ch.Close()
	var got []Event
	var mu sync.Mutex
	var wg sync.WaitGroup
	wg.Add(10)
	cancel := collect(ch, "sub", &got, &mu, &wg)
	defer cancel()

	for i := 0; i < 10; i++ {
		if err := ch.Push(Event{Source: "src", Data: []byte{byte(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 10 {
		t.Fatalf("delivered = %d", len(got))
	}
	for i, ev := range got {
		if ev.Data[0] != byte(i) {
			t.Fatalf("out of order at %d: %v", i, ev.Data)
		}
		if ev.TypeID != "IDL:test/E:1.0" || ev.Seq != uint64(i+1) {
			t.Fatalf("stamping wrong: %+v", ev)
		}
	}
}

func TestFanOutToManySubscribers(t *testing.T) {
	leak.Check(t)
	ch := NewChannel("IDL:test/E:1.0", 16, Block)
	defer ch.Close()
	const subs = 8
	var count atomic.Int64
	var wg sync.WaitGroup
	wg.Add(subs * 5)
	for i := 0; i < subs; i++ {
		defer ch.Subscribe("s", func(Event) { count.Add(1); wg.Done() })()
	}
	if ch.SubscriberCount() != subs {
		t.Fatalf("subscribers = %d", ch.SubscriberCount())
	}
	for i := 0; i < 5; i++ {
		if err := ch.Push(Event{}); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	if count.Load() != subs*5 {
		t.Fatalf("deliveries = %d", count.Load())
	}
	pub, del, drop := ch.Stats()
	if pub != 5 || del != subs*5 || drop != 0 {
		t.Fatalf("stats = %d %d %d", pub, del, drop)
	}
}

func TestCancelStopsDelivery(t *testing.T) {
	leak.Check(t)
	ch := NewChannel("e", 16, Block)
	defer ch.Close()
	var n atomic.Int64
	cancel := ch.Subscribe("s", func(Event) { n.Add(1) })
	_ = ch.Push(Event{})
	deadline := time.Now().Add(time.Second)
	for n.Load() != 1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	cancel()
	cancel() // idempotent
	_ = ch.Push(Event{})
	time.Sleep(10 * time.Millisecond)
	if n.Load() != 1 {
		t.Fatalf("events after cancel: %d", n.Load())
	}
}

func TestDropOldestOverflow(t *testing.T) {
	leak.Check(t)
	ch := NewChannel("e", 2, DropOldest)
	defer ch.Close()
	release := make(chan struct{})
	var got []byte
	var mu sync.Mutex
	done := make(chan struct{}, 16)
	ch.Subscribe("slow", func(ev Event) {
		<-release
		mu.Lock()
		got = append(got, ev.Data[0])
		mu.Unlock()
		done <- struct{}{}
	})
	// First event is picked up by the delivery loop and blocks on
	// release; give the loop a moment so the queue is empty again.
	_ = ch.Push(Event{Data: []byte{0}})
	time.Sleep(20 * time.Millisecond)
	// Fill the queue (capacity 2) and overflow it twice.
	for i := 1; i <= 4; i++ {
		_ = ch.Push(Event{Data: []byte{byte(i)}})
	}
	close(release)
	// Expect delivery of event 0 plus the two newest queued (3, 4).
	deadline := time.After(2 * time.Second)
	for i := 0; i < 3; i++ {
		select {
		case <-done:
		case <-deadline:
			t.Fatal("timed out")
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 3 || got[0] != 0 || got[1] != 3 || got[2] != 4 {
		t.Fatalf("got = %v, want [0 3 4]", got)
	}
	// Events 1 and 2 were displaced by the overflow: the drop policy's
	// cost is observable through the counter.
	if got := ch.Dropped(); got != 2 {
		t.Fatalf("dropped = %d, want 2", got)
	}
	pub, del, _ := ch.Stats()
	if pub != 5 || del != 3 {
		t.Fatalf("stats = %d published, %d delivered; want 5, 3", pub, del)
	}
}

func TestBlockingBackpressure(t *testing.T) {
	leak.Check(t)
	ch := NewChannel("e", 1, Block)
	defer ch.Close()
	release := make(chan struct{})
	var delivered atomic.Int64
	ch.Subscribe("slow", func(Event) {
		<-release
		delivered.Add(1)
	})
	_ = ch.Push(Event{}) // taken by delivery loop, blocks in consumer
	time.Sleep(10 * time.Millisecond)
	_ = ch.Push(Event{}) // fills the queue

	pushed := make(chan struct{})
	go func() {
		_ = ch.Push(Event{}) // must block until consumer drains
		close(pushed)
	}()
	select {
	case <-pushed:
		t.Fatal("push did not block on full queue")
	case <-time.After(30 * time.Millisecond):
	}
	close(release)
	select {
	case <-pushed:
	case <-time.After(2 * time.Second):
		t.Fatal("push never unblocked")
	}
	deadline := time.Now().Add(time.Second)
	for delivered.Load() != 3 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if delivered.Load() != 3 {
		t.Fatalf("delivered = %d", delivered.Load())
	}
}

func TestClosedChannelRejectsPush(t *testing.T) {
	leak.Check(t)
	ch := NewChannel("e", 4, Block)
	ch.Close()
	if err := ch.Push(Event{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v", err)
	}
	// Subscribing after close is a no-op.
	cancel := ch.Subscribe("s", func(Event) { t.Error("delivered on closed channel") })
	cancel()
	ch.Close() // idempotent
}

func TestHubChannelPerKind(t *testing.T) {
	leak.Check(t)
	h := NewHub(8, Block)
	defer h.Close()
	a := h.Channel("IDL:a:1.0")
	b := h.Channel("IDL:b:1.0")
	if a == b {
		t.Fatal("kinds share a channel")
	}
	if h.Channel("IDL:a:1.0") != a {
		t.Fatal("channel not cached")
	}
	kinds := h.Kinds()
	if len(kinds) != 2 {
		t.Fatalf("kinds = %v", kinds)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	a.Subscribe("s", func(ev Event) {
		if ev.TypeID != "IDL:a:1.0" {
			t.Errorf("cross-kind delivery: %+v", ev)
		}
		wg.Done()
	})
	_ = a.Push(Event{})
	_ = b.Push(Event{})
	wg.Wait()
}

func TestConcurrentPublishers(t *testing.T) {
	leak.Check(t)
	ch := NewChannel("e", 256, Block)
	defer ch.Close()
	var n atomic.Int64
	var wg sync.WaitGroup
	const total = 16 * 100
	wg.Add(total)
	ch.Subscribe("s", func(Event) { n.Add(1); wg.Done() })
	var pubs sync.WaitGroup
	for p := 0; p < 16; p++ {
		pubs.Add(1)
		go func() {
			defer pubs.Done()
			for i := 0; i < 100; i++ {
				if err := ch.Push(Event{}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	pubs.Wait()
	wg.Wait()
	if n.Load() != total {
		t.Fatalf("delivered = %d", n.Load())
	}
	// Sequence numbers must be unique and dense.
	pub, _, _ := ch.Stats()
	if pub != total {
		t.Fatalf("published = %d", pub)
	}
}

func BenchmarkPushOneSubscriber(b *testing.B) {
	ch := NewChannel("e", 1024, DropOldest)
	defer ch.Close()
	ch.Subscribe("s", func(Event) {})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = ch.Push(Event{Data: []byte("payload")})
	}
}

func BenchmarkPushFanOut8(b *testing.B) {
	ch := NewChannel("e", 1024, DropOldest)
	defer ch.Close()
	for i := 0; i < 8; i++ {
		ch.Subscribe("s", func(Event) {})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ch.Push(Event{Data: []byte("payload")})
	}
}

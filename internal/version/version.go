// Package version implements the dotted component versions used by
// CORBA-LC dependency management ("new components or new versions of
// existing components", paper §2.4.2): parsing, total ordering, and
// requirement matching ("1.2", ">=1.2", "1.*").
package version

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// V is a three-part component version.
type V struct {
	Major, Minor, Patch int
}

// ErrSyntax reports an unparseable version or requirement string.
var ErrSyntax = errors.New("version: syntax error")

// Parse parses "1", "1.2" or "1.2.3".
func Parse(s string) (V, error) {
	var v V
	if s == "" {
		return v, fmt.Errorf("%w: empty version", ErrSyntax)
	}
	parts := strings.Split(s, ".")
	if len(parts) > 3 {
		return v, fmt.Errorf("%w: %q has more than three parts", ErrSyntax, s)
	}
	nums := [3]int{}
	for i, p := range parts {
		n, err := strconv.Atoi(p)
		if err != nil || n < 0 {
			return v, fmt.Errorf("%w: %q", ErrSyntax, s)
		}
		nums[i] = n
	}
	return V{nums[0], nums[1], nums[2]}, nil
}

// MustParse parses or panics; for literals in tests and examples.
func MustParse(s string) V {
	v, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return v
}

func (v V) String() string {
	return fmt.Sprintf("%d.%d.%d", v.Major, v.Minor, v.Patch)
}

// Compare returns -1, 0 or +1 ordering v against o.
func (v V) Compare(o V) int {
	switch {
	case v.Major != o.Major:
		return sign(v.Major - o.Major)
	case v.Minor != o.Minor:
		return sign(v.Minor - o.Minor)
	case v.Patch != o.Patch:
		return sign(v.Patch - o.Patch)
	}
	return 0
}

// Less reports v < o.
func (v V) Less(o V) bool { return v.Compare(o) < 0 }

func sign(n int) int {
	switch {
	case n < 0:
		return -1
	case n > 0:
		return 1
	}
	return 0
}

// Requirement is a parsed version constraint.
type Requirement struct {
	op   string // "", ">=", ">", "<=", "<", "=", "~" (wildcard)
	v    V
	wild int // for "1.*": number of significant parts (1 or 2)
}

// ParseRequirement parses a constraint: "" or "*" (any), "1.2.3" /
// "=1.2.3" (exact), ">=1.2", ">1.2", "<=2.0", "<2.0", or a wildcard
// "1.*" / "1.2.*" (same prefix).
func ParseRequirement(s string) (Requirement, error) {
	s = strings.TrimSpace(s)
	if s == "" || s == "*" {
		return Requirement{op: "*"}, nil
	}
	for _, op := range []string{">=", "<=", ">", "<", "="} {
		if strings.HasPrefix(s, op) {
			v, err := Parse(strings.TrimSpace(s[len(op):]))
			if err != nil {
				return Requirement{}, err
			}
			return Requirement{op: op, v: v}, nil
		}
	}
	if strings.HasSuffix(s, ".*") {
		prefix := strings.TrimSuffix(s, ".*")
		parts := strings.Split(prefix, ".")
		if len(parts) > 2 {
			return Requirement{}, fmt.Errorf("%w: wildcard %q too deep", ErrSyntax, s)
		}
		v, err := Parse(prefix)
		if err != nil {
			return Requirement{}, err
		}
		return Requirement{op: "~", v: v, wild: len(parts)}, nil
	}
	v, err := Parse(s)
	if err != nil {
		return Requirement{}, err
	}
	return Requirement{op: "=", v: v}, nil
}

// Matches reports whether version v satisfies the requirement.
func (r Requirement) Matches(v V) bool {
	switch r.op {
	case "*", "":
		return true
	case "=":
		return v.Compare(r.v) == 0
	case ">=":
		return v.Compare(r.v) >= 0
	case ">":
		return v.Compare(r.v) > 0
	case "<=":
		return v.Compare(r.v) <= 0
	case "<":
		return v.Compare(r.v) < 0
	case "~":
		if v.Major != r.v.Major {
			return false
		}
		if r.wild >= 2 && v.Minor != r.v.Minor {
			return false
		}
		return true
	}
	return false
}

func (r Requirement) String() string {
	switch r.op {
	case "*", "":
		return "*"
	case "~":
		if r.wild == 1 {
			return fmt.Sprintf("%d.*", r.v.Major)
		}
		return fmt.Sprintf("%d.%d.*", r.v.Major, r.v.Minor)
	case "=":
		return r.v.String()
	default:
		return r.op + r.v.String()
	}
}

// Best returns the index of the highest version in vs that satisfies r,
// or -1 when none does. Dependency resolution uses it to prefer the
// newest matching component.
func (r Requirement) Best(vs []V) int {
	best := -1
	for i, v := range vs {
		if !r.Matches(v) {
			continue
		}
		if best < 0 || vs[best].Less(v) {
			best = i
		}
	}
	return best
}

package version

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestParse(t *testing.T) {
	cases := map[string]V{
		"1":      {1, 0, 0},
		"1.2":    {1, 2, 0},
		"1.2.3":  {1, 2, 3},
		"0.0.0":  {0, 0, 0},
		"10.0.9": {10, 0, 9},
	}
	for s, want := range cases {
		got, err := Parse(s)
		if err != nil || got != want {
			t.Errorf("Parse(%q) = %v, %v", s, got, err)
		}
	}
	for _, bad := range []string{"", "a", "1.a", "1.2.3.4", "-1", "1.-2", "1..2"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}
}

func TestCompare(t *testing.T) {
	order := []string{"0.9.9", "1.0.0", "1.0.1", "1.1.0", "2.0.0", "10.0.0"}
	for i := range order {
		for j := range order {
			vi, vj := MustParse(order[i]), MustParse(order[j])
			want := 0
			if i < j {
				want = -1
			} else if i > j {
				want = 1
			}
			if got := vi.Compare(vj); got != want {
				t.Errorf("%s.Compare(%s) = %d, want %d", vi, vj, got, want)
			}
			if (vi.Less(vj)) != (want < 0) {
				t.Errorf("%s.Less(%s) wrong", vi, vj)
			}
		}
	}
}

func TestRequirements(t *testing.T) {
	cases := []struct {
		req string
		yes []string
		no  []string
	}{
		{"*", []string{"0.0.0", "9.9.9"}, nil},
		{"", []string{"1.0.0"}, nil},
		{"1.2.3", []string{"1.2.3"}, []string{"1.2.4", "1.2.0"}},
		{"=1.2", []string{"1.2.0"}, []string{"1.2.1"}},
		{">=1.2", []string{"1.2.0", "1.3.0", "2.0.0"}, []string{"1.1.9", "0.9.0"}},
		{">1.2", []string{"1.2.1", "2.0.0"}, []string{"1.2.0"}},
		{"<=2", []string{"2.0.0", "1.9.9"}, []string{"2.0.1"}},
		{"<2", []string{"1.9.9"}, []string{"2.0.0"}},
		{"1.*", []string{"1.0.0", "1.9.3"}, []string{"2.0.0", "0.9.0"}},
		{"1.2.*", []string{"1.2.0", "1.2.9"}, []string{"1.3.0", "2.2.0"}},
	}
	for _, tc := range cases {
		r, err := ParseRequirement(tc.req)
		if err != nil {
			t.Fatalf("ParseRequirement(%q): %v", tc.req, err)
		}
		for _, y := range tc.yes {
			if !r.Matches(MustParse(y)) {
				t.Errorf("%q should match %s", tc.req, y)
			}
		}
		for _, n := range tc.no {
			if r.Matches(MustParse(n)) {
				t.Errorf("%q should not match %s", tc.req, n)
			}
		}
	}
	for _, bad := range []string{">=x", "1.2.3.*", "~~1"} {
		if _, err := ParseRequirement(bad); err == nil {
			t.Errorf("ParseRequirement(%q) accepted", bad)
		}
	}
}

func TestRequirementString(t *testing.T) {
	for _, s := range []string{"*", "1.2.3", ">=1.2.0", "1.*", "1.2.*", "<2.0.0"} {
		r, err := ParseRequirement(s)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := ParseRequirement(r.String())
		if err != nil {
			t.Fatalf("re-parse %q: %v", r.String(), err)
		}
		for _, probe := range []string{"0.1.0", "1.0.0", "1.2.0", "1.2.3", "1.9.0", "2.0.0", "3.1.4"} {
			v := MustParse(probe)
			if r.Matches(v) != r2.Matches(v) {
				t.Errorf("%q round-trip differs on %s", s, probe)
			}
		}
	}
}

func TestBest(t *testing.T) {
	vs := []V{MustParse("1.0.0"), MustParse("1.5.0"), MustParse("2.0.0"), MustParse("1.4.9")}
	r, _ := ParseRequirement("1.*")
	if got := r.Best(vs); got != 1 {
		t.Fatalf("Best = %d", got)
	}
	r, _ = ParseRequirement(">=3")
	if got := r.Best(vs); got != -1 {
		t.Fatalf("Best(no match) = %d", got)
	}
	r, _ = ParseRequirement("*")
	if got := r.Best(vs); got != 2 {
		t.Fatalf("Best(any) = %d", got)
	}
	if got := r.Best(nil); got != -1 {
		t.Fatalf("Best(empty) = %d", got)
	}
}

// Property: Compare is a total order consistent with sorting, and
// String/Parse round-trips.
func TestQuickOrderAndRoundTrip(t *testing.T) {
	f := func(a, b, c uint8) bool {
		v := V{int(a), int(b), int(c)}
		got, err := Parse(v.String())
		if err != nil || got != v {
			return false
		}
		return v.Compare(v) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	g := func(raw []uint8) bool {
		if len(raw) < 3 {
			return true
		}
		var vs []V
		for i := 0; i+2 < len(raw); i += 3 {
			vs = append(vs, V{int(raw[i]), int(raw[i+1]), int(raw[i+2])})
		}
		sort.Slice(vs, func(i, j int) bool { return vs[i].Less(vs[j]) })
		for i := 1; i < len(vs); i++ {
			if vs[i].Less(vs[i-1]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(g, nil); err != nil {
		t.Fatal(err)
	}
}

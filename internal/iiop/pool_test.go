package iiop

// Tests for the pooled hot path: buffer-recycling safety under
// concurrency, the inbound frame-size cap, and the cancellation "flush
// discipline" (control messages reach the peer promptly — nothing sits
// in a user-space write buffer, because there is none: writes go to the
// socket as one writev).

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"corbalc/internal/cdr"
	"corbalc/internal/giop"
	"corbalc/internal/ior"
	"corbalc/internal/leak"
	"corbalc/internal/orb"
)

// TestOversizedFrameRejectedWithMessageError sends a frame whose header
// claims a body larger than the configured cap and expects the server to
// answer with a GIOP MessageError before dropping the connection —
// the protocol-visible half of the max-message-size satellite.
func TestOversizedFrameRejectedWithMessageError(t *testing.T) {
	serverORB := orb.NewORB()
	srv, err := ListenAndActivate(serverORB, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	host, _ := serverORB.Endpoint()
	_, port := serverORB.Endpoint()

	conn, err := net.Dial("tcp", fmt.Sprintf("%s:%d", host, port))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(5 * time.Second))

	// A header claiming one byte more than the cap; no body follows (the
	// server must reject on the header alone, before buffering anything).
	hdr := giop.EncodeHeader(giop.Header{
		Version: giop.V12, Order: cdr.LittleEndian, Type: giop.MsgRequest,
	}, int(giop.MaxMessageSize())+1)
	if _, err := conn.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}

	var resp [giop.HeaderLen]byte
	if _, err := conn.Read(resp[:]); err != nil {
		t.Fatalf("no MessageError before close: %v", err)
	}
	h, err := giop.DecodeHeader(resp[:])
	if err != nil {
		t.Fatal(err)
	}
	if h.Type != giop.MsgMessageError {
		t.Fatalf("reply type = %v, want MessageError", h.Type)
	}
}

// parkServant blocks in InvokeContext until its request context is
// cancelled, reporting the observed cancellation latency.
type parkServant struct {
	parked    chan struct{} // closed when the servant is blocked
	cancelled chan error    // receives ctx.Err() cause when released
}

func (*parkServant) RepositoryID() string { return "IDL:corbalc/test/Park:1.0" }

func (*parkServant) Invoke(op string, args *cdr.Decoder, reply *cdr.Encoder) error {
	return orb.BadOperation()
}

func (s *parkServant) InvokeContext(ctx context.Context, op string, args *cdr.Decoder, reply *cdr.Encoder) error {
	close(s.parked)
	select {
	case <-ctx.Done():
		s.cancelled <- context.Cause(ctx)
	case <-time.After(10 * time.Second):
		s.cancelled <- errors.New("never cancelled")
	}
	return orb.Timeout()
}

// TestCancelReachesServerPromptly is the flush-discipline test from the
// writeMaybeFragmented audit: while a slow call is parked server-side,
// the client's context expiry must push a CancelRequest onto the wire
// immediately (not parked behind buffering), cancelling the servant's
// context well before the server's own safety timeout.
func TestCancelReachesServerPromptly(t *testing.T) {
	s := &parkServant{parked: make(chan struct{}), cancelled: make(chan error, 1)}
	serverORB, _ := startServer(t, "park", s)
	client := newClient(t)
	ref := client.NewRef(serverORB.NewIOR("IDL:corbalc/test/Park:1.0", "park"))

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- ref.InvokeContext(ctx, "park", nil, nil) }()

	select {
	case <-s.parked:
	case <-time.After(5 * time.Second):
		t.Fatal("request never reached the servant")
	}
	cancel() // client gives up: a GIOP CancelRequest must go out now

	select {
	case cause := <-s.cancelled:
		if cause == nil || cause.Error() != "iiop: request cancelled by peer" {
			t.Fatalf("servant cancelled with cause %v, want peer cancellation", cause)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("CancelRequest did not reach the server promptly")
	}
	if err := <-done; err == nil {
		t.Fatal("cancelled call reported success")
	}
}

// TestCloseReachesServerPromptly is the Close half of the flush
// discipline: closing the client channel must tear down the server side
// of the connection promptly, cancelling parked requests.
func TestCloseReachesServerPromptly(t *testing.T) {
	s := &parkServant{parked: make(chan struct{}), cancelled: make(chan error, 1)}
	serverORB, _ := startServer(t, "park", s)
	client := newClient(t)
	ref := client.NewRef(serverORB.NewIOR("IDL:corbalc/test/Park:1.0", "park"))

	go func() { _ = ref.Invoke("park", nil, nil) }()
	select {
	case <-s.parked:
	case <-time.After(5 * time.Second):
		t.Fatal("request never reached the servant")
	}
	client.Shutdown() // closes the cached channel -> TCP close

	select {
	case <-s.cancelled:
		// Connection-death cancellation: any cause is acceptable, what
		// matters is that it arrived promptly.
	case <-time.After(2 * time.Second):
		t.Fatal("connection close did not cancel the parked request promptly")
	}
}

// keeperServant copies request payloads (via the copying ReadOctetSeq)
// and retains them across calls — the "retaining servant" from the
// aliasing test matrix. Retained copies must stay intact no matter how
// many later requests recycle the wire buffers they came from.
type keeperServant struct {
	mu   sync.Mutex
	kept [][]byte
}

func (*keeperServant) RepositoryID() string { return "IDL:corbalc/test/Keeper:1.0" }

func (s *keeperServant) Invoke(op string, args *cdr.Decoder, reply *cdr.Encoder) error {
	switch op {
	case "keep":
		b, err := args.ReadOctetSeq() // copying read: safe to retain
		if err != nil {
			return err
		}
		s.mu.Lock()
		s.kept = append(s.kept, b)
		n := len(s.kept)
		s.mu.Unlock()
		reply.WriteLong(int32(n))
		return nil
	}
	return orb.BadOperation()
}

func (s *keeperServant) snapshot() [][]byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([][]byte(nil), s.kept...)
}

// TestRetainingServantSurvivesBufferRecycling hammers a servant that
// retains (copied) request payloads, then verifies every retained copy
// against the expected pattern: if any decode had aliased a recycled
// wire buffer, later traffic would have scribbled over it.
func TestRetainingServantSurvivesBufferRecycling(t *testing.T) {
	s := &keeperServant{}
	serverORB, _ := startServer(t, "keeper", s)
	client := newClient(t)
	ref := client.NewRef(serverORB.NewIOR("IDL:corbalc/test/Keeper:1.0", "keeper"))

	const calls = 200
	payload := func(i int) []byte {
		b := make([]byte, 64+(i%7)*32)
		for j := range b {
			b[j] = byte(i + j)
		}
		return b
	}
	for i := 0; i < calls; i++ {
		p := payload(i)
		if err := ref.Invoke("keep",
			func(e *cdr.Encoder) { e.WriteOctetSeq(p) },
			func(d *cdr.Decoder) error { _, err := d.ReadLong(); return err },
		); err != nil {
			t.Fatal(err)
		}
	}
	kept := s.snapshot()
	if len(kept) != calls {
		t.Fatalf("kept %d payloads, want %d", len(kept), calls)
	}
	for i, b := range kept {
		want := payload(i)
		if len(b) != len(want) {
			t.Fatalf("payload %d: %d bytes, want %d", i, len(b), len(want))
		}
		for j := range b {
			if b[j] != want[j] {
				t.Fatalf("payload %d corrupted at byte %d: recycled-buffer aliasing", i, j)
			}
		}
	}
}

// TestConcurrentCallSendStorm mixes two-way calls and oneway sends from
// many goroutines over one multiplexed connection — run under -race (the
// CI race gate does) this is the pool layer's aliasing/race test: every
// message body cycles through the pools while neighbours are in flight.
func TestConcurrentCallSendStorm(t *testing.T) {
	leak.Check(t)
	serverORB, _ := startServer(t, "calc", calcServant{})
	client := newClient(t)
	ref := client.NewRef(serverORB.NewIOR("IDL:corbalc/test/Calc:1.0", "calc"))

	const goroutines = 12
	const perG = 25
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				n := int32(g*1000 + i)
				if i%5 == 4 {
					// Interleave oneways: fire-and-forget requests whose
					// buffers are recycled right after the write.
					if err := ref.InvokeOneway("square", func(e *cdr.Encoder) { e.WriteLong(n) }); err != nil {
						errs <- err
						return
					}
					continue
				}
				var sq int32
				err := ref.Invoke("square",
					func(e *cdr.Encoder) { e.WriteLong(n) },
					func(d *cdr.Decoder) error {
						var err error
						sq, err = d.ReadLong()
						return err
					})
				if err != nil {
					errs <- err
					return
				}
				if sq != n*n {
					errs <- fmt.Errorf("square(%d) = %d: cross-request corruption", n, sq)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// BenchmarkChannelCall measures a raw channel round trip: request build
// through reply release, without the ObjectRef layer — the transport
// cost that rides under every remote invocation.
func BenchmarkChannelCall(b *testing.B) {
	serverORB := orb.NewORB()
	srv, err := ListenAndActivate(serverORB, "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	serverORB.Activate("calc", calcServant{})

	profile := serverORB.NewIOR("IDL:corbalc/test/Calc:1.0", "calc").Profile(ior.TagInternetIOP)
	if profile == nil {
		b.Fatal("no IIOP profile")
	}
	tr := &Transport{}
	ch, err := tr.Dial(context.Background(), profile)
	if err != nil {
		b.Fatal(err)
	}
	defer ch.Close()

	ctx := context.Background()
	key := []byte("calc")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reqID := uint32(i + 1)
		e := giop.GetBodyEncoder(cdr.LittleEndian)
		if err := giop.EncodeRequest(e, giop.V12, &giop.RequestHeader{
			RequestID: reqID, ResponseExpected: true, ObjectKey: key, Operation: "square",
		}); err != nil {
			b.Fatal(err)
		}
		giop.AlignBody(e, giop.V12)
		e.WriteLong(7)
		req := giop.MessageFromEncoder(giop.Header{
			Version: giop.V12, Order: cdr.LittleEndian, Type: giop.MsgRequest,
		}, e)
		reply, err := ch.Call(ctx, req, reqID)
		req.Release()
		if err != nil {
			b.Fatal(err)
		}
		reply.Release()
	}
}

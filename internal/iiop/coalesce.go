// Write coalescing: under caller fan-in, many small GIOP frames headed
// for the same connection are group-committed into a single writev, so
// the syscalls/call ratio drops with concurrency instead of staying at
// one. The design is caller-driven — there is no flusher goroutine to
// leak or to add a scheduling hop on the C=1 latency path:
//
//   - The first writer to find the connection idle becomes the *leader*:
//     it batches whatever is pending (its own frame plus anything
//     concurrent callers appended) and issues one vectored write.
//   - Writers arriving while a flush is in progress are *followers*:
//     they append their frame to the next batch and block until the
//     batch carrying their frame has been written (tracked by batch
//     sequence number), preserving the Channel contract that the caller
//     may recycle the request buffer as soon as the call returns.
//   - Adaptively, the leader yields the processor while each yield
//     grows the batch, bounded by the coalescing window, then flushes.
//     A connection with a single caller pays one no-op yield (sub-µs)
//     and flushes immediately; under fan-in the yields hand the CPU to
//     the very writers whose frames the batch is waiting for. The
//     worst-case extra latency a frame can pay is one window plus one
//     in-flight batch.
//   - Large or fragmented frames bypass batching: the writer takes the
//     flush token exclusively, drains small frames queued ahead of it,
//     and streams through the connection's fragmenting writer.
//
// A write error poisons the coalescer: every waiter and all future
// writers get the sticky error, mirroring clientConn.fail.
package iiop

import (
	"io"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"corbalc/internal/giop"
)

// DefaultCoalesceWindow is the group-commit window applied (only under
// detected fan-in) when a Transport or Server leaves CoalesceWindow
// zero.
const DefaultCoalesceWindow = 50 * time.Microsecond

// coalesceBypass is the body size beyond which a frame skips batching:
// past this point the writev already carries a full TCP segment and
// batching only adds memory pressure from pinned bodies.
const coalesceBypass = 32 << 10

// wbatch accumulates encoded frames for one vectored write. Headers
// live in the batch (value array, no per-frame allocation); bodies are
// referenced, not copied — the owning caller is blocked until the batch
// is flushed, so the references stay valid. SyncNone frames instead
// transfer ownership of their whole pooled message to the batch (owned),
// whose reset releases them once the batch has flushed — or been dropped
// on a poisoned connection.
type wbatch struct {
	vecs   net.Buffers
	hdrs   [][giop.HeaderLen]byte
	owned  []*giop.Message
	frames int
	seq    uint64
}

func (b *wbatch) add(h giop.Header, body []byte) {
	n := len(b.hdrs)
	b.hdrs = append(b.hdrs, giop.EncodeHeader(h, len(body)))
	b.vecs = append(b.vecs, b.hdrs[n][:])
	if len(body) > 0 {
		b.vecs = append(b.vecs, body)
	}
	b.frames++
}

// addOwned appends a frame whose pooled message now belongs to the
// batch: reset (post-flush or post-poison) is its release point.
func (b *wbatch) addOwned(m *giop.Message) {
	b.add(m.Header, m.Body)
	b.owned = append(b.owned, m)
}

// reset releases owned messages, drops the body references (so pooled
// buffers are not pinned by the recycled batch) and empties the batch
// for reuse.
func (b *wbatch) reset() {
	for i, m := range b.owned {
		m.Release()
		b.owned[i] = nil
	}
	b.owned = b.owned[:0]
	for i := range b.vecs {
		b.vecs[i] = nil
	}
	b.vecs = b.vecs[:0]
	b.hdrs = b.hdrs[:0]
	b.frames = 0
}

// coalescer serialises all writes on one connection, group-committing
// small frames. It replaces the bare write-mutex both clientConn and the
// server connection loop used to hold around their giop.Writer.
type coalescer struct {
	conn   io.Writer
	mw     *giop.Writer  // big-frame path; used only while holding the flush token
	window time.Duration // fan-in wait; <= 0 disables the timed window

	// enq counts frames ever enqueued; the leader's gather loop reads it
	// lock-free to detect batch growth instead of taking mu every yield.
	enq atomic.Uint64

	mu       sync.Mutex
	cond     sync.Cond
	pend     *wbatch // frames awaiting the next flush (never nil)
	spare    *wbatch // recycled batch (nil only while a flush is in flight)
	wvecs    net.Buffers
	flushing bool   // flush token: one leader or one big writer at a time
	pendSeq  uint64 // sequence the current pend batch will carry; starts at 1
	doneSeq  uint64 // highest batch sequence fully written; 0 = none yet
	err      error  // sticky first write error
}

// newCoalescer wraps conn (net.Buffers.WriteTo uses writev when the
// writer is a net.Conn).
func newCoalescer(conn io.Writer, window time.Duration) *coalescer {
	co := &coalescer{
		conn:    conn,
		mw:      giop.NewWriter(conn),
		window:  window,
		pend:    &wbatch{},
		spare:   &wbatch{},
		pendSeq: 1, // so doneSeq's zero value never satisfies await(firstBatch)
	}
	co.cond.L = &co.mu
	return co
}

// write queues one GIOP frame and blocks until it has reached the
// socket (or the connection failed). maxFrag bounds fragmentation as in
// writeMaybeFragmented; zero disables it.
func (co *coalescer) write(h giop.Header, body []byte, maxFrag int) error {
	if len(body) >= coalesceBypass ||
		(maxFrag > 0 && len(body) > maxFrag && h.Version == giop.V12 && giop.Fragmentable(h.Type)) {
		return co.writeBig(h, body, maxFrag)
	}
	leader, seq, err := co.enqueue(h, body)
	if err != nil {
		return err
	}
	if !leader {
		return co.await(seq)
	}
	if err := co.lead(true); err != nil {
		// The connection is poisoned, but if our own frame's batch went
		// out before the failure the call itself succeeded.
		if !co.sent(seq) {
			return err
		}
	}
	return nil
}

// writeOwned queues one GIOP frame whose pooled message the coalescer
// takes ownership of (SyncNone oneways). Once the frame is accepted the
// caller does not wait for the flush: a follower returns immediately
// (its batch's reset releases the message after the vectored write), a
// leader still performs the write it now owes the batch. On error —
// sticky connection failure before acceptance, or a big-frame write
// failure — ownership stays with the caller, who may retry elsewhere.
func (co *coalescer) writeOwned(m *giop.Message, maxFrag int) error {
	h, body := m.Header, m.Body
	if len(body) >= coalesceBypass ||
		(maxFrag > 0 && len(body) > maxFrag && h.Version == giop.V12 && giop.Fragmentable(h.Type)) {
		// The exclusive big-frame path writes synchronously anyway, so
		// there is no flush to decouple from: write, then release.
		if err := co.writeBig(h, body, maxFrag); err != nil {
			return err
		}
		m.Release()
		return nil
	}
	leader, err := co.enqueueOwned(m)
	if err != nil {
		return err
	}
	if leader {
		// The flush outcome belongs to the batch (reset releases the
		// owned frames either way); a SyncNone sender gets no delivery
		// report once the frame is accepted.
		_ = co.lead(true)
	}
	return nil
}

// enqueueOwned is enqueue for an ownership-transferring frame: on
// success the pending batch owns m.
func (co *coalescer) enqueueOwned(m *giop.Message) (leader bool, err error) {
	co.mu.Lock()
	defer co.mu.Unlock()
	if co.err != nil {
		return false, co.err
	}
	co.pend.addOwned(m)
	co.enq.Add(1)
	if co.flushing {
		return false, nil
	}
	co.flushing = true
	return true, nil
}

// enqueue appends the frame to the pending batch. The first writer on
// an idle connection takes the flush token and becomes leader; others
// learn the batch sequence to await.
func (co *coalescer) enqueue(h giop.Header, body []byte) (leader bool, seq uint64, err error) {
	co.mu.Lock()
	defer co.mu.Unlock()
	if co.err != nil {
		return false, 0, co.err
	}
	co.pend.add(h, body)
	co.enq.Add(1)
	seq = co.pendSeq
	if co.flushing {
		return false, seq, nil
	}
	co.flushing = true
	return true, seq, nil
}

// await blocks until the batch carrying seq has been written or the
// connection failed. A batch that made it out before the failure still
// counts as sent.
func (co *coalescer) await(seq uint64) error {
	co.mu.Lock()
	defer co.mu.Unlock()
	for co.doneSeq < seq && co.err == nil {
		co.cond.Wait()
	}
	if co.doneSeq >= seq {
		return nil
	}
	return co.err
}

// sent reports whether the batch carrying seq was fully written.
func (co *coalescer) sent(seq uint64) bool {
	co.mu.Lock()
	defer co.mu.Unlock()
	return co.doneSeq >= seq
}

// lead runs the group-commit loop: flush batches until the queue is
// empty, then release the flush token. Only the holder of the flush
// token may call it.
func (co *coalescer) lead(window bool) error {
	if window && co.window > 0 {
		co.gather()
	}
	for {
		co.flush()
		if done, err := co.stepDown(); done {
			return err
		}
	}
}

// gather is the group-commit wait: the leader yields the processor so
// already-runnable writers can append to the batch, and keeps yielding
// only while each yield grows it, bounded by the window. Yielding
// instead of sleeping matters twice over: a timer sleep costs
// milliseconds of latency on coarse-grained kernels, and on a saturated
// scheduler the yield donates the CPU to exactly the goroutines whose
// frames the batch is waiting for. With no other runnable goroutine
// (the single-caller case) the first yield returns immediately, adds
// nothing, and the flush proceeds — so an idle connection never waits.
func (co *coalescer) gather() {
	var deadline time.Time
	for {
		before := co.enq.Load()
		runtime.Gosched()
		if co.enq.Load() == before {
			return
		}
		now := time.Now()
		if deadline.IsZero() {
			deadline = now.Add(co.window)
		} else if now.After(deadline) {
			return
		}
	}
}

// flush writes pending batches until the queue is empty or the
// connection fails.
func (co *coalescer) flush() {
	for {
		b := co.takeBatch()
		if b == nil {
			return
		}
		// The in-flight vector lives in a coalescer field so the
		// *net.Buffers receiver does not force a per-flush heap
		// allocation; WriteTo consumes the copy, the batch keeps the
		// original entries for reset to nil out.
		co.wvecs = b.vecs
		_, werr := co.wvecs.WriteTo(co.conn)
		co.wvecs = nil
		co.putBatch(b, werr)
		if werr != nil {
			return
		}
	}
}

// takeBatch claims the pending batch for writing, or returns nil when
// there is nothing to write (or the connection already failed).
func (co *coalescer) takeBatch() *wbatch {
	co.mu.Lock()
	defer co.mu.Unlock()
	if co.err != nil || co.pend.frames == 0 {
		return nil
	}
	b := co.pend
	b.seq = co.pendSeq
	co.pendSeq++
	co.pend = co.spare
	co.spare = nil
	return b
}

// putBatch records the outcome of a flushed batch and recycles it.
func (co *coalescer) putBatch(b *wbatch, werr error) {
	co.mu.Lock()
	defer co.mu.Unlock()
	b.reset()
	co.spare = b
	if werr != nil {
		if co.err == nil {
			co.err = werr
		}
	} else {
		co.doneSeq = b.seq
	}
	co.cond.Broadcast()
}

// stepDown releases the flush token if the queue is empty; when frames
// slipped in after the last flush it keeps the token and reports the
// leader must loop. On a poisoned connection leftover frames are
// dropped and their waiters released with the sticky error.
func (co *coalescer) stepDown() (done bool, err error) {
	co.mu.Lock()
	defer co.mu.Unlock()
	if co.err == nil && co.pend.frames > 0 {
		return false, nil
	}
	if co.err != nil && co.pend.frames > 0 {
		co.pend.reset()
	}
	co.flushing = false
	co.cond.Broadcast()
	return true, co.err
}

// acquireExclusive waits for the flush token, for writers that need the
// raw connection (fragmenting path).
func (co *coalescer) acquireExclusive() error {
	co.mu.Lock()
	defer co.mu.Unlock()
	for co.flushing && co.err == nil {
		co.cond.Wait()
	}
	if co.err != nil {
		return co.err
	}
	co.flushing = true
	return nil
}

// poison records a write failure from the exclusive path.
func (co *coalescer) poison(err error) {
	co.mu.Lock()
	defer co.mu.Unlock()
	if co.err == nil {
		co.err = err
	}
}

// writeBig writes one large (possibly fragmented) frame outside the
// batching path: it takes the flush token, drains small frames queued
// ahead so ordering is preserved per caller, streams the frame through
// the fragmenting writer, then drains stragglers and steps down.
func (co *coalescer) writeBig(h giop.Header, body []byte, maxFrag int) error {
	if err := co.acquireExclusive(); err != nil {
		return err
	}
	co.flush()
	err := co.stickyErr()
	if err == nil {
		err = writeMaybeFragmented(co.mw, h, body, maxFrag)
		if err != nil {
			co.poison(err)
		}
	}
	if lerr := co.lead(false); err == nil && lerr != nil {
		err = lerr
	}
	return err
}

// stickyErr returns the recorded connection error, if any.
func (co *coalescer) stickyErr() error {
	co.mu.Lock()
	defer co.mu.Unlock()
	return co.err
}

package iiop

// Failover test for the striped connection pool: killing one stripe's
// TCP connection mid-storm must (1) fail the calls in flight on that
// stripe with a retriable system exception, (2) leave every call that
// succeeded with a correct, un-misrouted reply, and (3) let later calls
// redistribute over the surviving stripes and a lazily redialled
// replacement.

import (
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"corbalc/internal/cdr"
	"corbalc/internal/leak"
	"corbalc/internal/orb"
)

// slowCalcServant squares with a small delay, widening the in-flight
// window so a mid-storm connection kill reliably catches calls on the
// wire.
type slowCalcServant struct{}

func (slowCalcServant) RepositoryID() string { return "IDL:corbalc/test/Calc:1.0" }

func (slowCalcServant) Invoke(op string, args *cdr.Decoder, reply *cdr.Encoder) error {
	if op != "square" {
		return orb.BadOperation()
	}
	n, err := args.ReadLong()
	if err != nil {
		return err
	}
	time.Sleep(2 * time.Millisecond)
	reply.WriteLong(n * n)
	return nil
}

// connCount reports the server's live connection count.
func (s *Server) connCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.conns)
}

// killOneConn closes one live server-side connection, simulating a
// stripe failure the client did not initiate.
func (s *Server) killOneConn() bool {
	s.mu.Lock()
	var victim net.Conn
	for c := range s.conns {
		victim = c
		break
	}
	s.mu.Unlock()
	if victim == nil {
		return false
	}
	_ = victim.Close()
	return true
}

func TestPoolFailoverRedistributesAndRecovers(t *testing.T) {
	leak.Check(t)
	serverORB, srv := startServer(t, "calc", slowCalcServant{})
	client := orb.NewORB()
	client.RegisterTransport(&Transport{CallTimeout: 5 * time.Second, PoolSize: 4})
	t.Cleanup(client.Shutdown)
	ref := client.NewRef(serverORB.NewIOR("IDL:corbalc/test/Calc:1.0", "calc"))

	square := func(n int32) error {
		var sq int32
		err := ref.Invoke("square",
			func(e *cdr.Encoder) { e.WriteLong(n) },
			func(d *cdr.Decoder) error {
				var err error
				sq, err = d.ReadLong()
				return err
			})
		if err == nil && sq != n*n {
			t.Errorf("square(%d) = %d: reply misrouted across stripes", n, sq)
		}
		return err
	}

	// Warm the pool. Stripe selection is processor-affine, so the
	// number of stripes dialed equals the number of cores that have
	// carried calls — anywhere from one (GOMAXPROCS=1) to four.
	for i := 0; i < 8; i++ {
		if err := square(int32(i + 2)); err != nil {
			t.Fatal(err)
		}
	}
	if n := srv.connCount(); n < 1 || n > 4 {
		t.Fatalf("server sees %d connections after warmup, want 1..4 (affine stripes)", n)
	}

	const callers = 16
	const perCaller = 40
	var wg sync.WaitGroup
	var mu sync.Mutex
	var failures []error
	for g := 0; g < callers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perCaller; i++ {
				if err := square(int32(g*100 + i + 2)); err != nil {
					mu.Lock()
					failures = append(failures, err)
					mu.Unlock()
				}
			}
		}(g)
	}
	// Let the storm get airborne, then kill one stripe under it.
	time.Sleep(20 * time.Millisecond)
	if !srv.killOneConn() {
		t.Error("no server connection to kill")
	}
	wg.Wait()

	// Calls in flight on the killed stripe fail with a retriable
	// system exception (COMM_FAILURE completed-maybe, or TIMEOUT if the
	// reply was lost); anything else — or a wrong square, checked
	// inside square() — is a routing or pooling bug.
	for _, err := range failures {
		var se *orb.SystemException
		if !errors.As(err, &se) {
			t.Fatalf("mid-storm failure not a system exception: %v", err)
		}
		if se.Name != "COMM_FAILURE" && se.Name != "TIMEOUT" {
			t.Fatalf("mid-storm failure %v, want retriable COMM_FAILURE or TIMEOUT", err)
		}
	}
	t.Logf("storm: %d/%d calls failed retriably at stripe kill", len(failures), callers*perCaller)

	// The pool evicted the dead stripe; subsequent calls fail over to a
	// survivor (rebinding the core's affinity hint) or lazily redial
	// the empty slot — either way they must all succeed.
	for i := 0; i < 12; i++ {
		if err := square(int32(i + 50)); err != nil {
			t.Fatalf("call %d after failover: %v", i, err)
		}
	}
	if n := srv.connCount(); n < 1 {
		t.Fatalf("server sees %d connections after recovery, want at least 1", n)
	}
}

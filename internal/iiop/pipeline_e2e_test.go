package iiop

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"corbalc/internal/cdr"
	"corbalc/internal/orb"
)

// recorder is a test interceptor that copies every RequestInfo it sees;
// it serves as both a ClientInterceptor (recording at ReceiveReply, when
// Elapsed/Err are final) and a ServerInterceptor (recording at
// ReceiveRequest, before dispatch).
type recorder struct {
	mu     sync.Mutex
	sent   []orb.RequestInfo
	served []orb.RequestInfo
}

func (r *recorder) SendRequest(context.Context, *orb.RequestInfo) {}

func (r *recorder) ReceiveReply(_ context.Context, info *orb.RequestInfo) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sent = append(r.sent, *info)
}

func (r *recorder) ReceiveRequest(_ context.Context, info *orb.RequestInfo) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.served = append(r.served, *info)
	return nil
}

func (r *recorder) SendReply(context.Context, *orb.RequestInfo) {}

// waitFor blocks until the server chain has seen n dispatches of op —
// i.e. the nth such request is registered in-flight server-side.
func (r *recorder) waitFor(t *testing.T, op string, n int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		r.mu.Lock()
		count := 0
		for _, info := range r.served {
			if info.Operation == op {
				count++
			}
		}
		r.mu.Unlock()
		if count >= n {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("server never saw %d %q dispatches", n, op)
}

func (r *recorder) find(list func(*recorder) []orb.RequestInfo, op string) (orb.RequestInfo, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, info := range list(r) {
		if info.Operation == op {
			return info, true
		}
	}
	return orb.RequestInfo{}, false
}

// The full invocation pipeline over real IIOP: the client's context
// deadline and call ID travel in service contexts, both ORBs'
// interceptor chains observe the same call, deadline expiry surfaces as
// CORBA::TIMEOUT at the client, the CancelRequest emitted on the wire
// reaches the in-flight servant as context cancellation.
func TestE2EContextPipeline(t *testing.T) {
	observedCause := make(chan error, 1)
	servant := orb.ContextServantFunc{
		RepoID: "IDL:corbalc/test/Calc:1.0",
		Fn: func(ctx context.Context, op string, args *cdr.Decoder, reply *cdr.Encoder) error {
			switch op {
			case "echo":
				n, err := args.ReadLong()
				if err != nil {
					return err
				}
				reply.WriteLong(n)
				return nil
			case "block":
				select {
				case <-ctx.Done():
					observedCause <- context.Cause(ctx)
					return orb.Timeout()
				case <-time.After(5 * time.Second):
					observedCause <- nil
					reply.WriteLong(0)
					return nil
				}
			}
			return orb.BadOperation()
		},
	}
	serverORB, _ := startServer(t, "calc", servant)
	srvRec := &recorder{}
	serverORB.AddServerInterceptor(srvRec)

	client := newClient(t)
	cliRec := &recorder{}
	client.AddClientInterceptor(cliRec)
	ref, err := client.ResolveStr(serverORB.NewIOR("IDL:corbalc/test/Calc:1.0", "calc").String())
	if err != nil {
		t.Fatal(err)
	}

	// A successful bounded call: both chains see it, with one identity.
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	var echoed int32
	err = ref.InvokeContext(ctx, "echo",
		func(e *cdr.Encoder) { e.WriteLong(7) },
		func(d *cdr.Decoder) error {
			var err error
			echoed, err = d.ReadLong()
			return err
		})
	if err != nil || echoed != 7 {
		t.Fatalf("echo = %d, %v; want 7, nil", echoed, err)
	}
	cliInfo, ok := cliRec.find(func(r *recorder) []orb.RequestInfo { return r.sent }, "echo")
	if !ok {
		t.Fatal("client interceptor never observed the echo call")
	}
	srvInfo, ok := srvRec.find(func(r *recorder) []orb.RequestInfo { return r.served }, "echo")
	if !ok {
		t.Fatal("server interceptor never observed the echo call")
	}
	if cliInfo.CallID == "" || cliInfo.CallID != srvInfo.CallID {
		t.Fatalf("call IDs differ across the wire: client %q, server %q", cliInfo.CallID, srvInfo.CallID)
	}
	if srvInfo.Deadline.IsZero() {
		t.Fatal("client deadline did not reach the server's interceptor")
	}
	if cliInfo.Err != nil {
		t.Fatalf("client interceptor recorded Err = %v for a successful call", cliInfo.Err)
	}

	// Deadline expiry mid-call: CORBA::TIMEOUT at the client (with the
	// context cause preserved), CancelRequest on the wire, and the
	// servant sees its context cancelled by the peer.
	ctx2, cancel2 := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel2()
	err = ref.InvokeContext(ctx2, "block", nil, func(d *cdr.Decoder) error { return nil })
	var sysErr *orb.SystemException
	if !errors.As(err, &sysErr) || sysErr.Name != "TIMEOUT" {
		t.Fatalf("expired call err = %v, want CORBA::TIMEOUT", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired call err = %v, want wrapped context.DeadlineExceeded", err)
	}
	select {
	case cause := <-observedCause:
		// Two correct cancellation paths race here: the propagated
		// SvcDeadline expires the server-derived context locally, and the
		// client's CancelRequest cancels it from the wire. Either way the
		// servant must observe a cancelled context.
		if cause == nil {
			t.Fatal("servant ran to completion; cancellation never reached it")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("servant never observed cancellation")
	}
	if info, ok := cliRec.find(func(r *recorder) []orb.RequestInfo { return r.sent }, "block"); !ok {
		t.Fatal("client interceptor never observed the failed call")
	} else if info.Err == nil {
		t.Fatal("client interceptor recorded Err = nil for the expired call")
	}

	// Explicit cancellation with no deadline: the only way the servant's
	// context can end is the CancelRequest arriving on the wire, so the
	// recorded cause must be the peer-cancel cause.
	ctx3, cancel3 := context.WithCancel(context.Background())
	callErr := make(chan error, 1)
	go func() {
		callErr <- ref.InvokeContext(ctx3, "block", nil, func(d *cdr.Decoder) error { return nil })
	}()
	srvRec.waitFor(t, "block", 2)
	cancel3()
	if err := <-callErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled call err = %v, want wrapped context.Canceled", err)
	}
	select {
	case cause := <-observedCause:
		if cause == nil || !strings.Contains(cause.Error(), "cancelled by peer") {
			t.Fatalf("servant cancellation cause = %v, want the peer-cancel cause", cause)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("servant never observed the CancelRequest")
	}

	// The pipeline stays healthy after a cancelled in-flight call.
	if err := ref.InvokeContext(context.Background(), "echo",
		func(e *cdr.Encoder) { e.WriteLong(1) },
		func(d *cdr.Decoder) error { _, err := d.ReadLong(); return err }); err != nil {
		t.Fatalf("follow-up call after cancellation: %v", err)
	}
}

// The per-ORB Stats interceptor aggregates both directions of traffic.
func TestE2EStatsInterceptor(t *testing.T) {
	serverORB, _ := startServer(t, "calc", calcServant{})
	client := newClient(t)
	ref, err := client.ResolveStr(serverORB.NewIOR("IDL:corbalc/test/Calc:1.0", "calc").String())
	if err != nil {
		t.Fatal(err)
	}
	const calls = 3
	for i := 0; i < calls; i++ {
		if err := ref.InvokeContext(context.Background(), "square",
			func(e *cdr.Encoder) { e.WriteLong(int32(i)) },
			func(d *cdr.Decoder) error { _, err := d.ReadLong(); return err }); err != nil {
			t.Fatal(err)
		}
	}
	if got := client.Stats().RequestsSent(); got != calls {
		t.Fatalf("client RequestsSent = %d, want %d", got, calls)
	}
	if got := serverORB.Stats().RequestsServed(); got != calls {
		t.Fatalf("server RequestsServed = %d, want %d", got, calls)
	}
	if sent, _ := client.Stats().MeanLatency(); sent <= 0 {
		t.Fatalf("client mean latency = %v, want > 0", sent)
	}
}

package iiop

import (
	"fmt"
	"net"
	"strconv"
	"sync"
	"testing"
	"time"

	"corbalc/internal/cdr"
	"corbalc/internal/orb"
)

func benchThroughput(b *testing.B, callers int, tr *Transport) {
	benchThroughputSrv(b, callers, tr, 0)
}

func benchThroughputSrv(b *testing.B, callers int, tr *Transport, srvWindow time.Duration) {
	serverORB := orb.NewORB()
	srv := NewServer(serverORB)
	srv.CoalesceWindow = srvWindow
	bound, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	if err := activate(serverORB, bound); err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	serverORB.Activate("calc", calcServant{})

	client := orb.NewORB()
	client.RegisterTransport(tr)
	defer client.Shutdown()
	ref := client.NewRef(serverORB.NewIOR("IDL:corbalc/test/Calc:1.0", "calc"))

	square := func(n int32) error {
		var sq int32
		err := ref.Invoke("square",
			func(e *cdr.Encoder) { e.WriteLong(n) },
			func(d *cdr.Decoder) error {
				var err error
				sq, err = d.ReadLong()
				return err
			})
		if err == nil && sq != n*n {
			return fmt.Errorf("square(%d) = %d: cross-caller corruption", n, sq)
		}
		return err
	}
	// Warm the path: dial every stripe once.
	for i := 0; i < 8; i++ {
		if err := square(3); err != nil {
			b.Fatal(err)
		}
	}

	b.ReportAllocs()
	b.ResetTimer()
	start := time.Now()
	var wg sync.WaitGroup
	errs := make(chan error, callers)
	for g := 0; g < callers; g++ {
		n := b.N / callers
		if g < b.N%callers {
			n++
		}
		wg.Add(1)
		go func(g, n int) {
			defer wg.Done()
			for i := 0; i < n; i++ {
				if err := square(int32(g%100 + 2)); err != nil {
					errs <- err
					return
				}
			}
		}(g, n)
	}
	wg.Wait()
	el := time.Since(start)
	close(errs)
	for err := range errs {
		b.Fatal(err)
	}
	if sec := el.Seconds(); sec > 0 {
		b.ReportMetric(float64(b.N)/sec, "calls/s")
	}
}

func BenchmarkConcurrentTCPThroughput(b *testing.B) {
	for _, c := range []int{1, 8, 64, 256} {
		b.Run(fmt.Sprintf("C=%d", c), func(b *testing.B) {
			benchThroughput(b, c, &Transport{})
		})
	}
	// The pre-pool architecture, for the speedup ratio the benchgate
	// records: one connection per endpoint, no write coalescing on
	// either side. C=1/single is the seed-equivalent configuration.
	for _, c := range []int{1, 64} {
		b.Run(fmt.Sprintf("C=%d-single", c), func(b *testing.B) {
			benchThroughputSrv(b, c, &Transport{PoolSize: -1, CoalesceWindow: -1}, -1)
		})
	}
}

// BenchmarkParallelDispatch drives the full TCP invocation path through
// b.RunParallel — one worker per GOMAXPROCS — so `go test -cpu 1,2,4,8`
// sweeps the multi-core scaling curve of the sharded hot path: COW
// registry reads, processor-affine stripe selection, per-stripe pending
// maps and coalescers. The benchgate's -minratio floor on its /cpu=N
// variants is what pins "more cores means more throughput" in CI.
func BenchmarkParallelDispatch(b *testing.B) {
	serverORB := orb.NewORB()
	srv := NewServer(serverORB)
	bound, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	if err := activate(serverORB, bound); err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	serverORB.Activate("calc", calcServant{})

	client := orb.NewORB()
	client.RegisterTransport(&Transport{})
	defer client.Shutdown()
	ref := client.NewRef(serverORB.NewIOR("IDL:corbalc/test/Calc:1.0", "calc"))

	square := func(n int32) error {
		var sq int32
		err := ref.Invoke("square",
			func(e *cdr.Encoder) { e.WriteLong(n) },
			func(d *cdr.Decoder) error {
				var err error
				sq, err = d.ReadLong()
				return err
			})
		if err == nil && sq != n*n {
			return fmt.Errorf("square(%d) = %d: cross-caller corruption", n, sq)
		}
		return err
	}
	// Warm the path: dial every stripe once.
	for i := 0; i < 8; i++ {
		if err := square(3); err != nil {
			b.Fatal(err)
		}
	}

	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		n := int32(2)
		for pb.Next() {
			if err := square(n%100 + 2); err != nil {
				b.Error(err)
				return
			}
			n++
		}
	})
	b.StopTimer()
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(b.N)/sec, "calls/s")
	}
}

// activate mirrors ListenAndActivate's endpoint registration for a
// server whose knobs were set before Listen.
func activate(o *orb.ORB, bound net.Addr) error {
	host, portStr, err := net.SplitHostPort(bound.String())
	if err != nil {
		return err
	}
	port, err := strconv.ParseUint(portStr, 10, 16)
	if err != nil {
		return err
	}
	o.SetEndpoint(host, uint16(port))
	return nil
}

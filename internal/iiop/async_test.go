package iiop

// Tests for the asynchronous invocation layer: true oneway semantics on
// the wire (ResponseExpected=false, no pending-map entry, SyncNone
// ownership transfer) and the AMI future path (CallAsync + Wait/Ready/
// Cancel), including the leak discipline for abandoned futures.

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"corbalc/internal/cdr"
	"corbalc/internal/giop"
	"corbalc/internal/leak"
	"corbalc/internal/orb"
)

// recordingServant signals every op it executes.
type recordingServant struct {
	ops chan string
}

func (recordingServant) RepositoryID() string { return "IDL:corbalc/test/Calc:1.0" }

func (s recordingServant) Invoke(op string, args *cdr.Decoder, reply *cdr.Encoder) error {
	select {
	case s.ops <- op:
	default:
	}
	if op == "square" {
		n, err := args.ReadLong()
		if err != nil {
			return err
		}
		reply.WriteLong(n * n)
	}
	return nil
}

// rawOneway builds a pooled GIOP 1.2 request frame with
// ResponseExpected=false, as InvokeOneway would emit it.
func rawOneway(t *testing.T, id uint32, op string) *giop.Message {
	t.Helper()
	e := giop.GetBodyEncoder(cdr.LittleEndian)
	err := giop.EncodeRequest(e, giop.V12, &giop.RequestHeader{
		RequestID:        id,
		ResponseExpected: false,
		ObjectKey:        []byte("calc"),
		Operation:        op,
	})
	if err != nil {
		e.Release()
		t.Fatal(err)
	}
	h := giop.Header{Version: giop.V12, Order: cdr.LittleEndian, Type: giop.MsgRequest}
	return giop.MessageFromEncoder(h, e)
}

// A SyncNone oneway hands the pooled frame to the write coalescer and
// registers nothing in the pending map: the request reaches the servant
// with no reply slot ever existing for it.
func TestOnewaySendOwnedNoPendingResidue(t *testing.T) {
	leak.Check(t)
	ops := make(chan string, 16)
	serverORB, _ := startServer(t, "calc", recordingServant{ops: ops})
	cc := dialRaw(t, serverORB, &Transport{})

	if err := cc.SendOwned(context.Background(), rawOneway(t, 1, "fire")); err != nil {
		t.Fatal(err)
	}
	select {
	case op := <-ops:
		if op != "fire" {
			t.Fatalf("servant ran %q, want fire", op)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("oneway never reached the servant")
	}
	if n := cc.pendingLen(); n != 0 {
		t.Fatalf("pending slots after oneway = %d, want 0", n)
	}
}

// The full orb stack: InvokeOneway must put ResponseExpected=false on
// the wire — observable because the server tallies a request in the
// oneway bucket only when the decoded header says no reply is expected —
// and SyncNone must do the same while transferring buffer ownership.
func TestOnewayWireSemanticsThroughORB(t *testing.T) {
	leak.Check(t)
	ops := make(chan string, 16)
	serverORB, _ := startServer(t, "calc", recordingServant{ops: ops})
	client := newClient(t)
	ref := client.NewRef(serverORB.NewIOR("IDL:corbalc/test/Calc:1.0", "calc"))

	if err := ref.InvokeOneway("fire", nil); err != nil {
		t.Fatal(err)
	}
	if err := ref.InvokeOnewayScoped(context.Background(), "fire", nil, orb.SyncNone); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		select {
		case <-ops:
		case <-time.After(2 * time.Second):
			t.Fatalf("oneway %d never reached the servant", i)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, served := serverORB.Stats().Oneways(); served == 2 {
			break
		}
		if time.Now().After(deadline) {
			_, served := serverORB.Stats().Oneways()
			t.Fatalf("server oneway served = %d, want 2 (ResponseExpected=false not on the wire?)", served)
		}
		time.Sleep(time.Millisecond)
	}
	if sent, _ := client.Stats().Oneways(); sent != 2 {
		t.Fatalf("client oneway sent = %d, want 2", sent)
	}
	// Oneways count in the totals but never feed the latency clock.
	if lat, _ := client.Stats().MeanLatency(); lat != 0 {
		t.Fatalf("oneway fed the latency clock: %v", lat)
	}
}

// An async call resolves through Wait with the decoded reply, and the
// launch/settle counters bracket it.
func TestCallAsyncFutureOverTCP(t *testing.T) {
	leak.Check(t)
	serverORB, _ := startServer(t, "calc", calcServant{})
	client := newClient(t)
	ref := client.NewRef(serverORB.NewIOR("IDL:corbalc/test/Calc:1.0", "calc"))

	var sq int32
	fu, err := ref.CallAsync("square",
		func(e *cdr.Encoder) { e.WriteLong(12) },
		func(d *cdr.Decoder) error { var err error; sq, err = d.ReadLong(); return err })
	if err != nil {
		t.Fatal(err)
	}
	if err := fu.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if sq != 144 {
		t.Fatalf("square = %d", sq)
	}
	if !fu.Done() || fu.Err() != nil {
		t.Fatalf("future state: done=%v err=%v", fu.Done(), fu.Err())
	}
	launched, settled := client.Stats().Async()
	if launched != 1 || settled != 1 {
		t.Fatalf("async counters = %d launched, %d settled", launched, settled)
	}
}

// Ready polls without blocking and eventually collects the reply.
func TestFutureReadyPolling(t *testing.T) {
	leak.Check(t)
	serverORB, _ := startServer(t, "calc", calcServant{sleep: 20 * time.Millisecond})
	client := newClient(t)
	ref := client.NewRef(serverORB.NewIOR("IDL:corbalc/test/Calc:1.0", "calc"))

	var sq int32
	fu, err := ref.CallAsync("square",
		func(e *cdr.Encoder) { e.WriteLong(5) },
		func(d *cdr.Decoder) error { var err error; sq, err = d.ReadLong(); return err })
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for !fu.Ready() {
		if time.Now().After(deadline) {
			t.Fatal("future never became ready")
		}
		time.Sleep(time.Millisecond)
	}
	if fu.Err() != nil || sq != 25 {
		t.Fatalf("sq=%d err=%v", sq, fu.Err())
	}
}

// A Wait bounded by a context leaves the call in flight on expiry (the
// AMI polling model): a later unbounded Wait still collects the reply.
func TestFutureWaitDeadlineLeavesCallInFlight(t *testing.T) {
	leak.Check(t)
	serverORB, _ := startServer(t, "calc", calcServant{})
	client := newClient(t)
	ref := client.NewRef(serverORB.NewIOR("IDL:corbalc/test/Calc:1.0", "calc"))

	var out int32
	fu, err := ref.CallAsync("slow", nil, // servant sleeps 200ms
		func(d *cdr.Decoder) error { var err error; out, err = d.ReadLong(); return err })
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	err = fu.Wait(ctx)
	cancel()
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("bounded Wait = %v, want context.DeadlineExceeded", err)
	}
	if fu.Done() {
		t.Fatal("ctx expiry resolved the future")
	}
	if err := fu.Wait(context.Background()); err != nil {
		t.Fatalf("second Wait: %v", err)
	}
	if out != 1 {
		t.Fatalf("slow reply = %d", out)
	}
}

// Cancel resolves the future promptly — it must not wait out the
// servant's 200ms — and frees the pending slot.
func TestFutureCancelPromptness(t *testing.T) {
	leak.Check(t)
	serverORB, _ := startServer(t, "calc", calcServant{})
	client := newClient(t)
	ref := client.NewRef(serverORB.NewIOR("IDL:corbalc/test/Calc:1.0", "calc"))

	fu, err := ref.CallAsync("slow", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	fu.Cancel()
	if d := time.Since(start); d > 100*time.Millisecond {
		t.Fatalf("Cancel took %v", d)
	}
	if !fu.Done() {
		t.Fatal("Cancel did not resolve the future")
	}
	if !errors.Is(fu.Err(), orb.ErrFutureCancelled) {
		t.Fatalf("Err = %v, want ErrFutureCancelled cause", fu.Err())
	}
	var se *orb.SystemException
	if !errors.As(fu.Err(), &se) || se.Name != "TIMEOUT" {
		t.Fatalf("Err = %v, want CORBA::TIMEOUT", fu.Err())
	}
	fu.Cancel() // idempotent

	// Cancelling while a Wait is blocked must interrupt it promptly too.
	fu2, err := ref.CallAsync("slow", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	waited := make(chan error, 1)
	go func() { waited <- fu2.Wait(context.Background()) }()
	time.Sleep(20 * time.Millisecond) // let Wait park in Recv
	fu2.Cancel()
	select {
	case werr := <-waited:
		if !errors.Is(werr, orb.ErrFutureCancelled) {
			t.Fatalf("interrupted Wait = %v", werr)
		}
	case <-time.After(time.Second):
		t.Fatal("Cancel did not interrupt the blocked Wait")
	}
}

// An async storm where many futures are abandoned mid-flight must not
// wedge the multiplexed connection, leak pending slots, or leak the
// goroutines/buffers behind them.
func TestAsyncStormAbandonedFuturesLeakFree(t *testing.T) {
	leak.Check(t)
	serverORB, _ := startServer(t, "calc", calcServant{sleep: time.Millisecond})
	cc := dialRaw(t, serverORB, &Transport{})

	const calls = 200
	var wg sync.WaitGroup
	for i := 0; i < calls; i++ {
		id := uint32(i + 1)
		pr, err := cc.CallAsync(context.Background(), rawRequest(t, id, "square"), id)
		if err != nil {
			t.Fatal(err)
		}
		if i%2 == 0 {
			// Abandon half the calls immediately: raced replies must be
			// released, not pinned in reply channels.
			pr.Abandon()
			continue
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			m, err := pr.Recv(context.Background())
			if err != nil {
				t.Error(err)
				return
			}
			m.Release()
		}()
	}
	wg.Wait()
	deadline := time.Now().Add(2 * time.Second)
	for cc.pendingLen() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("pending slots after storm = %d, want 0", cc.pendingLen())
		}
		time.Sleep(time.Millisecond)
	}
	// The connection is still usable.
	reply, err := cc.Call(context.Background(), rawRequest(t, 9999, "square"), 9999)
	if err != nil {
		t.Fatalf("post-storm call: %v", err)
	}
	if id, _ := giop.PeekRequestID(reply); id != 9999 {
		t.Fatalf("post-storm reply ID = %d", id)
	}
}

// Futures over the orb layer, abandoned at every stage, stay leak-free
// and keep the stats bracketed (every launch eventually settles).
func TestAsyncStormThroughORB(t *testing.T) {
	leak.Check(t)
	serverORB, _ := startServer(t, "calc", calcServant{})
	client := newClient(t)
	ref := client.NewRef(serverORB.NewIOR("IDL:corbalc/test/Calc:1.0", "calc"))

	const calls = 64
	futures := make([]*orb.Future, 0, calls)
	for i := 0; i < calls; i++ {
		fu, err := ref.CallAsync("square",
			func(e *cdr.Encoder) { e.WriteLong(int32(i)) },
			func(d *cdr.Decoder) error { _, err := d.ReadLong(); return err })
		if err != nil {
			t.Fatal(err)
		}
		futures = append(futures, fu)
	}
	for i, fu := range futures {
		if i%3 == 0 {
			fu.Cancel()
		} else if err := fu.Wait(context.Background()); err != nil {
			t.Fatalf("future %d: %v", i, err)
		}
	}
	launched, settled := client.Stats().Async()
	if launched != calls || settled != calls {
		t.Fatalf("async counters = %d launched, %d settled, want %d/%d", launched, settled, calls, calls)
	}
}

// A collocated (same-ORB) async call resolves synchronously at launch.
func TestCallAsyncCollocated(t *testing.T) {
	leak.Check(t)
	o := orb.NewORB()
	defer o.Shutdown()
	o.Activate("calc", calcServant{})
	ref := o.NewRef(o.NewIOR("IDL:corbalc/test/Calc:1.0", "calc"))

	var sq int32
	fu, err := ref.CallAsync("square",
		func(e *cdr.Encoder) { e.WriteLong(9) },
		func(d *cdr.Decoder) error { var err error; sq, err = d.ReadLong(); return err })
	if err != nil {
		t.Fatal(err)
	}
	if !fu.Done() {
		t.Fatal("collocated future not resolved at launch")
	}
	if err := fu.Wait(context.Background()); err != nil || sq != 81 {
		t.Fatalf("sq=%d err=%v", sq, err)
	}
}

// Async calls surface servant exceptions through the future.
func TestCallAsyncUserException(t *testing.T) {
	leak.Check(t)
	serverORB, _ := startServer(t, "calc", calcServant{})
	client := newClient(t)
	ref := client.NewRef(serverORB.NewIOR("IDL:corbalc/test/Calc:1.0", "calc"))

	fu, err := ref.CallAsync("boom", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	err = fu.Wait(context.Background())
	if !orb.IsUserException(err, "IDL:corbalc/test/Overflow:1.0") {
		t.Fatalf("err = %v", err)
	}
}

// Interceptors see async launches flagged and get exactly one reply
// callback per future, including cancelled ones.
func TestAsyncInterceptorBracketing(t *testing.T) {
	leak.Check(t)
	serverORB, _ := startServer(t, "calc", calcServant{})
	client := newClient(t)

	var mu sync.Mutex
	sends, replies, asyncFlagged := 0, 0, 0
	client.AddClientInterceptor(funcInterceptor{
		send: func(info *orb.RequestInfo) {
			mu.Lock()
			sends++
			if info.Async {
				asyncFlagged++
			}
			mu.Unlock()
		},
		reply: func(info *orb.RequestInfo) {
			mu.Lock()
			replies++
			mu.Unlock()
		},
	})
	ref := client.NewRef(serverORB.NewIOR("IDL:corbalc/test/Calc:1.0", "calc"))

	fu, err := ref.CallAsync("square",
		func(e *cdr.Encoder) { e.WriteLong(4) },
		func(d *cdr.Decoder) error { _, err := d.ReadLong(); return err })
	if err != nil {
		t.Fatal(err)
	}
	if err := fu.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	fu2, err := ref.CallAsync("slow", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	fu2.Cancel()

	mu.Lock()
	defer mu.Unlock()
	if sends != 2 || replies != 2 || asyncFlagged != 2 {
		t.Fatalf("interceptor saw %d sends, %d replies, %d async-flagged; want 2/2/2", sends, replies, asyncFlagged)
	}
}

type funcInterceptor struct {
	send  func(*orb.RequestInfo)
	reply func(*orb.RequestInfo)
}

func (f funcInterceptor) SendRequest(_ context.Context, info *orb.RequestInfo)  { f.send(info) }
func (f funcInterceptor) ReceiveReply(_ context.Context, info *orb.RequestInfo) { f.reply(info) }

// Package iiop carries GIOP messages over TCP, providing the server side
// (a listener that dispatches inbound requests to an ORB through a
// bounded worker pool) and the client side (a transport whose striped
// connection pool multiplexes concurrent requests over a few connections
// per endpoint, demultiplexing replies by request ID). Writes on both
// sides flow through a group-committing coalescer (see coalesce.go) so
// concurrent small frames share syscalls.
package iiop

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"runtime"
	"strconv"
	"sync"
	"time"

	"corbalc/internal/cdr"
	"corbalc/internal/giop"
	"corbalc/internal/ior"
	"corbalc/internal/orb"
)

// connReadBufSize is the buffered-reader size for IIOP connections: big
// enough that a header read plus a typical body arrive in one syscall,
// so the old two-reads-per-message pattern stops hitting the socket
// twice.
const connReadBufSize = 32 << 10

// readerPool recycles connection read buffers; connections come and go
// (per-test servers, churning peers) but their 32 KiB buffers need not.
var readerPool = sync.Pool{New: func() any { return bufio.NewReaderSize(nil, connReadBufSize) }}

func getReader(r io.Reader) *bufio.Reader {
	br := readerPool.Get().(*bufio.Reader)
	br.Reset(r)
	return br
}

func putReader(br *bufio.Reader) {
	br.Reset(nil) // drop the conn reference while pooled
	readerPool.Put(br)
}

// Handler consumes an inbound GIOP message and produces the reply (nil
// when none is due). The context is cancelled when the client sends a
// GIOP CancelRequest for the message's request ID or the connection
// dies. *orb.ORB satisfies it.
type Handler interface {
	HandleMessage(ctx context.Context, m *giop.Message) (*giop.Message, error)
}

// DefaultMaxFragment is the body size beyond which GIOP 1.2 messages
// are fragmented, bounding head-of-line blocking on multiplexed
// connections (package transfers can be megabytes).
const DefaultMaxFragment = 256 << 10

// DefaultDispatchQueue bounds queued-but-not-dispatched requests when
// Server.DispatchQueue is zero.
const DefaultDispatchQueue = 1024

// DefaultMaxDispatch is the dispatch worker-pool size used when
// Server.MaxDispatch is zero: enough to keep every core busy with
// headroom for servants that block briefly, while keeping the server's
// goroutine count a small constant instead of O(in-flight requests).
func DefaultMaxDispatch() int {
	return max(32, 4*runtime.GOMAXPROCS(0))
}

// Server accepts IIOP connections and dispatches their requests through
// a bounded worker pool.
type Server struct {
	handler Handler
	ln      net.Listener
	// MaxFragment bounds outgoing GIOP 1.2 bodies; larger replies are
	// fragmented. Zero disables fragmentation.
	MaxFragment int
	// MaxDispatch bounds concurrently-dispatched requests (the worker
	// pool size). Zero means DefaultMaxDispatch(); values below 1 mean a
	// single worker. Set before Listen.
	MaxDispatch int
	// DispatchQueue bounds requests accepted from connections but not
	// yet picked up by a worker. Zero means DefaultDispatchQueue;
	// negative means no queue (a request either reaches an idle worker
	// immediately or is refused). Overflow is answered with a CORBA
	// TRANSIENT system exception when a response is expected, else
	// dropped. Set before Listen.
	DispatchQueue int
	// CoalesceWindow tunes reply write coalescing, with the same
	// convention as Transport.CoalesceWindow: zero means
	// DefaultCoalesceWindow, negative disables the timed window. Set
	// before Listen.
	CoalesceWindow time.Duration

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup

	tasks    chan dispatchTask
	workerWG sync.WaitGroup
}

// NewServer returns a server dispatching to h.
func NewServer(h Handler) *Server {
	return &Server{handler: h, conns: make(map[net.Conn]struct{}), MaxFragment: DefaultMaxFragment}
}

// writeMaybeFragmented writes a message through the connection's
// vectored writer, fragmenting eligible large GIOP 1.2 bodies
// (Request, Reply, LocateRequest, LocateReply — see giop.Fragmentable).
// The caller holds the connection coalescer's flush token, which also
// serialises the writer's scratch state.
func writeMaybeFragmented(mw *giop.Writer, h giop.Header, body []byte, max int) error {
	if max > 0 && len(body) > max && h.Version == giop.V12 && giop.Fragmentable(h.Type) {
		return mw.WriteMessageFragmented(h, body, max)
	}
	return mw.WriteMessage(h, body)
}

// Listen binds the server to addr (e.g. "127.0.0.1:0") and starts
// accepting in the background. It returns the bound address.
func (s *Server) Listen(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.ln = ln
	s.startWorkers()
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr(), nil
}

// startWorkers builds the dispatch queue and worker pool once, sized
// from the MaxDispatch/DispatchQueue knobs. Caller holds s.mu.
func (s *Server) startWorkers() {
	if s.tasks != nil {
		return
	}
	n := s.MaxDispatch
	if n == 0 {
		n = DefaultMaxDispatch()
	}
	if n < 1 {
		n = 1
	}
	q := s.DispatchQueue
	if q == 0 {
		q = DefaultDispatchQueue
	}
	if q < 0 {
		q = 0
	}
	s.tasks = make(chan dispatchTask, q)
	for i := 0; i < n; i++ {
		s.workerWG.Add(1)
		go s.worker(s.tasks)
	}
}

// ListenAndActivate binds the server and records the resulting endpoint
// on o so subsequently minted IORs point at this server.
func ListenAndActivate(o *orb.ORB, addr string) (*Server, error) {
	s := NewServer(o)
	if err := s.ListenActivate(o, addr); err != nil {
		return nil, err
	}
	return s, nil
}

// ListenActivate binds an already-constructed (and possibly tuned)
// server and records the resulting endpoint on o. Set the concurrency
// knobs (MaxDispatch, DispatchQueue, CoalesceWindow) before calling.
func (s *Server) ListenActivate(o *orb.ORB, addr string) error {
	bound, err := s.Listen(addr)
	if err != nil {
		return err
	}
	host, portStr, err := net.SplitHostPort(bound.String())
	if err != nil {
		return err
	}
	port, err := strconv.ParseUint(portStr, 10, 16)
	if err != nil {
		return err
	}
	o.SetEndpoint(host, uint16(port))
	return nil
}

// track registers a live connection, or reports that the server is
// closed and the connection should be dropped.
func (s *Server) track(conn net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.conns[conn] = struct{}{}
	return true
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		if tc, ok := conn.(*net.TCPConn); ok {
			// The coalescer owns write batching; Nagle would stack a
			// second, uncontrolled delay on top of the commit window.
			_ = tc.SetNoDelay(true)
		}
		if !s.track(conn) {
			_ = conn.Close()
			return
		}
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

// errCancelledByPeer is the cancellation cause recorded when a client's
// GIOP CancelRequest aborts an in-flight request.
var errCancelledByPeer = errors.New("iiop: request cancelled by peer")

// serverConn is the per-connection state shared between the read loop
// and the workers dispatching its requests.
type serverConn struct {
	srv  *Server
	conn net.Conn
	co   *coalescer

	// inflight maps the request IDs currently queued or being handled to
	// their request contexts, so a CancelRequest can abort them. A
	// context is cancelled only while inflightMu is held: finish also
	// unregisters-then-recycles under it, so a cancel can never land on a
	// context already rebound to a later request.
	inflightMu sync.Mutex
	inflight   map[uint32]*reqCtx

	connCtx context.Context
	reqWG   sync.WaitGroup
}

// dispatchTask is one inbound message handed to the worker pool. It is
// passed by value through the dispatch channel, so queueing a request
// costs no allocation (its cancel context is pooled).
type dispatchTask struct {
	sc  *serverConn
	m   *giop.Message
	ctx context.Context
	rc  *reqCtx // nil when the message carries no request ID
	id  uint32
}

// reqCtx is the pooled per-request cancel context: a real
// context.WithCancelCause context (so servants keep exact stdlib
// semantics — context.Cause, goroutine-free WithDeadline children)
// whose two-allocation construction is amortised away. The pool's
// invariant is that only never-cancelled contexts recycle: a cancelled
// context's done channel is spent, so finish retires it to the GC and
// the next request pays for a fresh one — cancellation is the rare
// path. The context is parented on Background rather than the
// connection context (a pooled context cannot re-parent), so connection
// teardown reaches in-flight servants by sweeping the inflight table
// (cancelAllInflight) instead of by parent propagation.
//
// Like every pooled request resource, a reqCtx is request-scoped:
// servants must not retain it past their return.
type reqCtx struct {
	context.Context
	cancel context.CancelCauseFunc
}

var reqCtxPool = sync.Pool{New: func() any {
	c := new(reqCtx)
	c.Context, c.cancel = context.WithCancelCause(context.Background())
	return c
}}

func getReqCtx() *reqCtx { return reqCtxPool.Get().(*reqCtx) }

// recycle returns c to the pool unless it was cancelled (its done
// channel is closed and abandoned watchers may still hold it). Safe only
// after the context is unregistered from the inflight table: from then
// on no cancel can reach it.
func (c *reqCtx) recycle() {
	if c.Err() == nil {
		reqCtxPool.Put(c)
	}
}

// causeIs reports whether the context was cancelled with the given cause.
func (c *reqCtx) causeIs(cause error) bool {
	return context.Cause(c.Context) == cause
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		_ = conn.Close()
	}()
	sc := &serverConn{
		srv:      s,
		conn:     conn,
		co:       newCoalescer(conn, resolveWindow(s.CoalesceWindow)),
		inflight: make(map[uint32]*reqCtx),
	}
	defer sc.reqWG.Wait()
	// connCtx parents every request dispatched from this connection.
	// Request contexts are pooled and do not watch it (see reqCtx), so
	// teardown explicitly cancels everything in flight — registered AFTER
	// the reqWG.Wait defer (defers run LIFO): the loop must cancel
	// in-flight dispatches before waiting for them, or a parked servant
	// would stall connection teardown.
	connCtx, connCancel := context.WithCancel(context.Background())
	sc.connCtx = connCtx
	defer connCancel()
	defer sc.cancelAllInflight()
	br := getReader(conn)
	defer putReader(br)
	ra := giop.NewReassembler()
	defer ra.Drop()
	for {
		raw, err := giop.ReadMessagePooled(br)
		if err != nil {
			if errors.Is(err, giop.ErrMessageSize) {
				// Oversized frame: the header decoded fine, so tell the
				// peer why it is being dropped before closing.
				_ = sc.co.write(giop.Header{Version: giop.V12, Type: giop.MsgMessageError}, nil, 0)
			}
			return
		}
		if raw.Header.Type == giop.MsgCloseConnection {
			raw.Release()
			return
		}
		m, err := ra.Add(raw)
		if m != raw {
			// Add copied (or rejected) the fragment; the wire buffer is
			// ours to recycle. When m == raw the message passes through
			// and the dispatch task owns it.
			raw.Release()
		}
		if err != nil {
			return // corrupt fragment stream: drop the connection
		}
		if m == nil {
			continue // waiting for more fragments
		}
		if m.Header.Type == giop.MsgCancelRequest {
			if id, ok := giop.PeekRequestID(m); ok {
				sc.cancelInflight(id)
			}
			m.Release()
			continue
		}
		s.enqueue(sc, m)
	}
}

// cancelInflight aborts the queued or running request with the given ID
// on behalf of a peer CancelRequest. The cancel happens under inflightMu:
// once finish has unregistered a request (also under inflightMu), its
// pooled context may already be serving a later request, so cancelling
// outside the lock could abort the wrong call.
func (sc *serverConn) cancelInflight(id uint32) {
	sc.inflightMu.Lock()
	if rc := sc.inflight[id]; rc != nil {
		rc.cancel(errCancelledByPeer)
	}
	sc.inflightMu.Unlock()
}

// cancelAllInflight aborts every queued or running request at connection
// teardown, standing in for the parent-context propagation the pooled
// request contexts deliberately skip.
func (sc *serverConn) cancelAllInflight() {
	sc.inflightMu.Lock()
	for _, rc := range sc.inflight {
		rc.cancel(context.Canceled)
	}
	sc.inflightMu.Unlock()
}

// enqueue registers cancellation state for m and hands it to the worker
// pool. A full queue refuses the request instead of growing goroutines
// or memory without bound.
func (s *Server) enqueue(sc *serverConn, m *giop.Message) {
	t := dispatchTask{sc: sc, m: m, ctx: sc.connCtx}
	if m.Header.Type == giop.MsgRequest || m.Header.Type == giop.MsgLocateRequest {
		if id, ok := giop.PeekRequestID(m); ok {
			// Register before queueing so a CancelRequest overtaking the
			// dispatch still lands on the queued request.
			rc := getReqCtx()
			t.ctx, t.rc, t.id = rc, rc, id
			sc.inflightMu.Lock()
			sc.inflight[id] = rc
			sc.inflightMu.Unlock()
		}
	}
	sc.reqWG.Add(1)
	select {
	case s.tasks <- t:
	default:
		s.refuse(t)
	}
}

// refuse answers an overflowed request with a CORBA TRANSIENT system
// exception — the standard "retry later/elsewhere" signal — when a
// response is expected; oneways and locate probes are simply dropped.
func (s *Server) refuse(t dispatchTask) {
	defer t.sc.reqWG.Done()
	defer t.m.Release()
	t.finish()
	if t.m.Header.Type != giop.MsgRequest {
		return
	}
	var h giop.RequestHeader
	var d cdr.Decoder
	t.m.ResetBodyDecoder(&d)
	if err := giop.DecodeRequestInto(&d, t.m.Header.Version, &h); err != nil || !h.ResponseExpected {
		return
	}
	reply, err := orb.SystemExceptionReply(t.m.Header.Version, t.m.Header.Order, h.RequestID, orb.Transient())
	if err != nil {
		return
	}
	_ = t.sc.co.write(reply.Header, reply.Body, s.MaxFragment)
	reply.Release()
}

// worker drains the dispatch queue. The channel is a parameter rather
// than a field read so Close may nil out s.tasks without racing the
// loop's range expression.
func (s *Server) worker(tasks chan dispatchTask) {
	defer s.workerWG.Done()
	for t := range tasks {
		t.run()
	}
}

// finish unregisters the task's inflight slot and recycles its context.
// The delete happens under inflightMu — the same lock cancelInflight
// cancels under — so after it, no cancel can reach this context and the
// recycle is safe.
func (t *dispatchTask) finish() {
	if t.rc == nil {
		return
	}
	t.sc.inflightMu.Lock()
	delete(t.sc.inflight, t.id)
	t.sc.inflightMu.Unlock()
	t.rc.recycle()
}

// cancelled reports whether the peer sent a CancelRequest for this task.
func (t *dispatchTask) cancelled() bool {
	return t.rc != nil && t.rc.causeIs(errCancelledByPeer)
}

// run dispatches one queued message: the worker-pool body mirroring the
// old per-request goroutine, preserving the release discipline — the
// request buffer is released when the dispatch is fully done with it,
// after the handler returns and the reply (which never aliases the
// request) has been written.
func (t *dispatchTask) run() {
	sc := t.sc
	defer sc.reqWG.Done()
	defer t.m.Release()
	defer t.finish()
	if sc.connCtx.Err() != nil {
		return // connection torn down while this request sat queued
	}
	reply, err := sc.srv.handler.HandleMessage(t.ctx, t.m)
	if err != nil || reply == nil {
		if err != nil {
			// Protocol-level failure: tell the peer and drop.
			_ = sc.co.write(giop.Header{
				Version: t.m.Header.Version, Order: t.m.Header.Order, Type: giop.MsgMessageError,
			}, nil, 0)
		}
		return
	}
	defer reply.Release()
	if t.cancelled() {
		// The client sent CancelRequest: it no longer awaits this
		// reply, so writing it would only burn bandwidth.
		return
	}
	_ = sc.co.write(reply.Header, reply.Body, sc.srv.MaxFragment)
}

// shutdown marks the server closed and hands back the listener and live
// connections to tear down; ok is false when already closed.
func (s *Server) shutdown() (ln net.Listener, conns []net.Conn, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, nil, false
	}
	s.closed = true
	conns = make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	return s.ln, conns, true
}

// Close stops accepting and closes every live connection.
func (s *Server) Close() error {
	ln, conns, ok := s.shutdown()
	if !ok {
		return nil
	}
	var err error
	if ln != nil {
		err = ln.Close()
	}
	for _, c := range conns {
		_ = c.Close()
	}
	s.wg.Wait()
	// Every read loop has drained its own in-flight tasks (serveConn
	// waits on its reqWG before returning), so the queue is empty and
	// the workers can be released.
	s.mu.Lock()
	tasks := s.tasks
	s.tasks = nil
	s.mu.Unlock()
	if tasks != nil {
		close(tasks)
		s.workerWG.Wait()
	}
	return err
}

// DefaultCallTimeout bounds a two-way call when Transport.CallTimeout is
// left zero: a safety net against wedged connections, independent of any
// per-call context deadline.
const DefaultCallTimeout = 30 * time.Second

// Transport is the client-side IIOP transport, registered with an ORB to
// serve TagInternetIOP profiles.
type Transport struct {
	// DialTimeout bounds connection establishment (default 5s).
	DialTimeout time.Duration
	// CallTimeout bounds a single two-way request (default
	// DefaultCallTimeout; negative disables the limit, mirroring
	// MaxFragment).
	CallTimeout time.Duration
	// MaxFragment bounds outgoing GIOP 1.2 bodies (default
	// DefaultMaxFragment; negative disables fragmentation).
	MaxFragment int
	// PoolSize is the number of striped connections the ORB keeps per
	// endpoint (see orb.PoolSizer). Zero means DefaultPoolSize();
	// negative means a single connection.
	PoolSize int
	// CoalesceWindow is the group-commit window for write coalescing
	// under caller fan-in. Zero means DefaultCoalesceWindow; negative
	// disables the timed window (concurrent frames still piggyback on
	// in-flight flushes).
	CoalesceWindow time.Duration
}

// DefaultPoolSize is the per-endpoint connection-pool size when
// Transport.PoolSize is zero: one stripe per core up to eight. Stripe
// selection is processor-affine (see orb's channel pool), so the
// natural fanout is one stripe per core — each core then owns its
// stripe's write coalescer and pending map almost exclusively. More
// stripes than cores cannot be written concurrently anyway.
func DefaultPoolSize() int {
	return min(8, runtime.GOMAXPROCS(0))
}

// ChannelPoolSize implements orb.PoolSizer, resolving the PoolSize knob.
func (t *Transport) ChannelPoolSize() int {
	switch {
	case t.PoolSize > 0:
		return t.PoolSize
	case t.PoolSize < 0:
		return 1
	}
	return DefaultPoolSize()
}

// resolveWindow maps the CoalesceWindow knob convention (zero means
// default, negative means disabled) onto a concrete duration.
func resolveWindow(w time.Duration) time.Duration {
	switch {
	case w == 0:
		return DefaultCoalesceWindow
	case w < 0:
		return 0
	}
	return w
}

// effectiveCallTimeout resolves the CallTimeout knob: zero means the
// default, negative means no limit.
func (t *Transport) effectiveCallTimeout() time.Duration {
	switch {
	case t.CallTimeout == 0:
		return DefaultCallTimeout
	case t.CallTimeout < 0:
		return 0
	}
	return t.CallTimeout
}

// Tag implements orb.Transport.
func (t *Transport) Tag() uint32 { return ior.TagInternetIOP }

// Endpoint implements orb.Transport.
func (t *Transport) Endpoint(profile []byte) (string, error) {
	p, err := ior.DecodeIIOPProfile(profile)
	if err != nil {
		return "", err
	}
	return p.Addr(), nil
}

// Dial implements orb.Transport. Establishment is bounded by both
// DialTimeout and ctx, whichever ends first.
func (t *Transport) Dial(ctx context.Context, profile []byte) (orb.Channel, error) {
	addr, err := t.Endpoint(profile)
	if err != nil {
		return nil, err
	}
	dt := t.DialTimeout
	if dt == 0 {
		dt = 5 * time.Second
	}
	d := net.Dialer{Timeout: dt}
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("iiop: dial %s: %w", addr, err)
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		// The coalescer owns write batching; Nagle would stack a second,
		// uncontrolled delay on top of the commit window.
		_ = tc.SetNoDelay(true)
	}
	maxFrag := t.MaxFragment
	if maxFrag == 0 {
		maxFrag = DefaultMaxFragment
	}
	if maxFrag < 0 {
		maxFrag = 0
	}
	c := &clientConn{
		conn:        conn,
		co:          newCoalescer(conn, resolveWindow(t.CoalesceWindow)),
		pending:     make(map[uint32]pendingCall),
		callTimeout: t.effectiveCallTimeout(),
		maxFragment: maxFrag,
		reapStop:    make(chan struct{}),
	}
	//lint:ignore goroutinelifetime readLoop's lifetime IS the socket: it exits when conn.Read fails, and Close closes conn
	go c.readLoop()
	if c.callTimeout > 0 {
		go c.reaper()
	}
	return c, nil
}

// pendingCall is one in-flight two-way request awaiting its reply. gen
// is the reaper sweep generation at registration: the CallTimeout
// safety net is enforced by the connection's reaper counting sweeps
// rather than a per-call timer, so the per-call cost of the net is one
// map field instead of a clock read plus two timer-heap operations.
type pendingCall struct {
	ch  chan *giop.Message
	gen uint64
}

// clientConn multiplexes concurrent calls over one TCP connection. The
// ORB stripes an endpoint's traffic over a small pool of these, so each
// carries its own pending map — the reply-demux state is sharded
// per-stripe rather than contended globally.
type clientConn struct {
	conn        net.Conn
	co          *coalescer
	callTimeout time.Duration
	maxFragment int

	mu      sync.Mutex
	pending map[uint32]pendingCall
	reapGen uint64 // completed reaper sweeps
	err     error
	closed  bool

	reapStop chan struct{}
	reapOnce sync.Once
}

// errConnClosed reports a connection torn down mid-call.
var errConnClosed = errors.New("iiop: connection closed")

// reapSweeps is the number of reaper sweeps that make up one
// CallTimeout period.
const reapSweeps = 4

// reaper enforces the CallTimeout safety net for every pending call on
// the connection with a single ticker, sweeping the pending map at a
// quarter of the timeout. A call expires on the first sweep at which a
// full timeout has provably elapsed, so a timeout fires within
// [T, 1.25T] — acceptable slack for a last-resort net (callers needing
// precision use ctx deadlines) in exchange for removing a clock read,
// two timer-heap operations and a three-way select from every call.
func (c *clientConn) reaper() {
	period := c.callTimeout / reapSweeps
	if period < time.Millisecond {
		period = time.Millisecond
	}
	if period > time.Second {
		period = time.Second
	}
	tk := time.NewTicker(period)
	defer tk.Stop()
	for {
		select {
		case <-c.reapStop:
			return
		case <-tk.C:
			c.reap()
		}
	}
}

// stopReaper releases the reaper goroutine; safe to call repeatedly.
func (c *clientConn) stopReaper() {
	c.reapOnce.Do(func() { close(c.reapStop) })
}

// reap expires pending calls registered at least reapSweeps+1 sweeps
// ago — a call registered mid-period needs one extra sweep before a
// full timeout has provably elapsed. Deleting the slot under the lock
// makes the reaper the channel's only sender (the same ownership
// handoff readLoop uses), so the nil send below cannot race a reply;
// the waiter maps nil to CORBA::TIMEOUT.
func (c *clientConn) reap() {
	var expired []chan *giop.Message
	c.mu.Lock()
	c.reapGen++
	for id, pc := range c.pending {
		if c.reapGen-pc.gen > reapSweeps {
			delete(c.pending, id)
			expired = append(expired, pc.ch)
		}
	}
	c.mu.Unlock()
	for _, ch := range expired {
		ch <- nil
	}
}

// replyChanPool recycles the one-shot reply channels Call registers in
// the pending map. A channel may be recycled only on a path where the
// waiter's receive is known to be the channel's last traffic: the
// clean-reply and reaper-timeout paths, where the sender removed the
// pending slot before sending. On the ctx-abandon path a racing send may
// still be in flight, and on connection failure the channel is closed —
// those channels are left to the GC.
var replyChanPool sync.Pool

func getReplyChan() chan *giop.Message {
	if ch, _ := replyChanPool.Get().(chan *giop.Message); ch != nil {
		return ch
	}
	return make(chan *giop.Message, 1)
}

func (c *clientConn) readLoop() {
	br := getReader(c.conn)
	defer putReader(br)
	ra := giop.NewReassembler()
	defer ra.Drop()
	for {
		raw, err := giop.ReadMessagePooled(br)
		if err != nil {
			c.fail(err)
			return
		}
		m, err := ra.Add(raw)
		if m != raw {
			raw.Release() // fragment content was copied (or rejected)
		}
		if err != nil {
			c.fail(err)
			return
		}
		if m == nil {
			continue // mid-reassembly
		}
		switch m.Header.Type {
		case giop.MsgReply, giop.MsgLocateReply:
			id, ok := giop.PeekRequestID(m)
			if !ok {
				m.Release()
				c.fail(errors.New("iiop: undecodable reply header"))
				return
			}
			c.mu.Lock()
			pc := c.pending[id]
			delete(c.pending, id)
			c.mu.Unlock()
			if pc.ch != nil {
				// Ownership moves to the Call waiter, who releases the
				// reply once decoded.
				pc.ch <- m
			} else {
				// Abandoned call (timeout/cancel): nobody awaits this.
				m.Release()
			}
		case giop.MsgCloseConnection:
			m.Release()
			c.fail(io.EOF)
			return
		case giop.MsgMessageError:
			m.Release()
			c.fail(errors.New("iiop: peer reported message error"))
			return
		default:
			// Requests arriving on a client connection (bidirectional
			// GIOP) are not supported by the lightweight profile.
			m.Release()
		}
	}
}

func (c *clientConn) fail(err error) {
	c.mu.Lock()
	if c.err == nil {
		c.err = err
	}
	pending := c.pending
	c.pending = make(map[uint32]pendingCall)
	c.mu.Unlock()
	for _, pc := range pending {
		close(pc.ch)
	}
	c.stopReaper()
	_ = c.conn.Close()
}

// register enrolls a reply channel for requestID, failing fast when the
// connection is already dead.
func (c *clientConn) register(requestID uint32, ch chan *giop.Message) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil {
		return c.err
	}
	c.pending[requestID] = pendingCall{ch: ch, gen: c.reapGen}
	return nil
}

// Call implements orb.Channel. The reply wait ends when the reply
// arrives, ctx is done, or the CallTimeout safety net fires; in the
// latter two cases the pending slot is freed and a GIOP CancelRequest is
// sent so the server can abandon the work. A reply arriving after that is
// discarded by readLoop (no pending channel), leaving the multiplexed
// connection usable.
func (c *clientConn) Call(ctx context.Context, req *giop.Message, requestID uint32) (*giop.Message, error) {
	ch := getReplyChan()
	if err := c.register(requestID, ch); err != nil {
		return nil, err
	}

	if err := c.write(req); err != nil {
		// Not recycled: a concurrent fail() may already have snapshotted
		// (and be closing) this channel.
		c.mu.Lock()
		delete(c.pending, requestID)
		c.mu.Unlock()
		return nil, err
	}

	// The CallTimeout net is enforced by the connection's reaper, so a
	// call without a ctx deadline waits on a bare channel receive — no
	// per-call timer, no select.
	var m *giop.Message
	var ok bool
	if done := ctx.Done(); done == nil {
		m, ok = <-ch
	} else {
		select {
		case m, ok = <-ch:
		case <-done:
			c.abandonCall(requestID, req.Header, ch)
			return nil, ctx.Err()
		}
	}
	switch {
	case !ok:
		// fail closed the channel; it cannot be recycled.
		c.mu.Lock()
		err := c.err
		c.mu.Unlock()
		if err == nil {
			err = errConnClosed
		}
		return nil, err
	case m == nil:
		// The reaper expired the call; it already freed the pending
		// slot, so the channel saw its last send and can be recycled.
		c.sendCancel(requestID, req.Header)
		replyChanPool.Put(ch)
		return nil, orb.Timeout()
	}
	replyChanPool.Put(ch)
	return m, nil
}

// unregister removes the pending slot for requestID, reporting whether
// this caller removed it. A false return means a sender (readLoop,
// reaper, or fail) already claimed the slot: exactly one delivery on the
// call's channel is then guaranteed (a message, a nil, or a close).
func (c *clientConn) unregister(requestID uint32) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.pending[requestID]; !ok {
		return false
	}
	delete(c.pending, requestID)
	return true
}

// abandonCall gives up on an in-flight call: the pending slot is freed
// and the server notified. If a sender already claimed the slot, its
// imminent delivery is consumed so the reply buffer is released instead
// of leaking into the one-shot channel — which also makes the channel
// recyclable on every non-failure path.
func (c *clientConn) abandonCall(requestID uint32, h giop.Header, ch chan *giop.Message) {
	if c.unregister(requestID) {
		// No sender ever saw this slot: the channel carries no traffic
		// and can be recycled immediately.
		c.sendCancel(requestID, h)
		replyChanPool.Put(ch)
		return
	}
	m, ok := <-ch
	if !ok {
		return // fail closed the channel; leave it to the GC
	}
	if m != nil {
		m.Release() // the raced-in reply nobody awaits
	}
	replyChanPool.Put(ch)
}

// sendCancel notifies the server that a call was abandoned with a
// best-effort GIOP CancelRequest, matching the request's wire dialect.
func (c *clientConn) sendCancel(requestID uint32, h giop.Header) {
	e := giop.GetBodyEncoder(h.Order)
	giop.EncodeCancelRequest(e, &giop.CancelRequestHeader{RequestID: requestID})
	msg := giop.MessageFromEncoder(giop.Header{
		Version: h.Version, Order: h.Order, Type: giop.MsgCancelRequest,
	}, e)
	_ = c.write(msg)
	msg.Release()
}

// Send implements orb.Channel (oneway requests).
func (c *clientConn) Send(ctx context.Context, req *giop.Message) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return c.write(req)
}

func (c *clientConn) write(m *giop.Message) error {
	return c.co.write(m.Header, m.Body, c.maxFragment)
}

// Unusable reports whether the connection has failed, letting the ORB's
// channel pool evict this stripe (redialling lazily) instead of handing
// out calls that can only error.
func (c *clientConn) Unusable() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err != nil
}

// markClosed flips the closed flag, reporting whether this caller won.
func (c *clientConn) markClosed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return false
	}
	c.closed = true
	return true
}

// Close implements orb.Channel.
func (c *clientConn) Close() error {
	if c.markClosed() {
		c.fail(errConnClosed)
	}
	return nil
}

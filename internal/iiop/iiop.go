// Package iiop carries GIOP messages over TCP, providing the server side
// (a listener that dispatches inbound requests to an ORB) and the client
// side (a connection pool transport that multiplexes concurrent requests
// over one connection per endpoint, demultiplexing replies by request ID).
package iiop

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"sync"
	"time"

	"corbalc/internal/giop"
	"corbalc/internal/ior"
	"corbalc/internal/orb"
)

// connReadBufSize is the buffered-reader size for IIOP connections: big
// enough that a header read plus a typical body arrive in one syscall,
// so the old two-reads-per-message pattern stops hitting the socket
// twice.
const connReadBufSize = 32 << 10

// readerPool recycles connection read buffers; connections come and go
// (per-test servers, churning peers) but their 32 KiB buffers need not.
var readerPool = sync.Pool{New: func() any { return bufio.NewReaderSize(nil, connReadBufSize) }}

func getReader(r io.Reader) *bufio.Reader {
	br := readerPool.Get().(*bufio.Reader)
	br.Reset(r)
	return br
}

func putReader(br *bufio.Reader) {
	br.Reset(nil) // drop the conn reference while pooled
	readerPool.Put(br)
}

// Handler consumes an inbound GIOP message and produces the reply (nil
// when none is due). The context is cancelled when the client sends a
// GIOP CancelRequest for the message's request ID or the connection
// dies. *orb.ORB satisfies it.
type Handler interface {
	HandleMessage(ctx context.Context, m *giop.Message) (*giop.Message, error)
}

// DefaultMaxFragment is the body size beyond which GIOP 1.2 messages
// are fragmented, bounding head-of-line blocking on multiplexed
// connections (package transfers can be megabytes).
const DefaultMaxFragment = 256 << 10

// Server accepts IIOP connections and dispatches their requests.
type Server struct {
	handler Handler
	ln      net.Listener
	// MaxFragment bounds outgoing GIOP 1.2 bodies; larger replies are
	// fragmented. Zero disables fragmentation.
	MaxFragment int

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// NewServer returns a server dispatching to h.
func NewServer(h Handler) *Server {
	return &Server{handler: h, conns: make(map[net.Conn]struct{}), MaxFragment: DefaultMaxFragment}
}

// writeMaybeFragmented writes a message through the connection's
// vectored writer, fragmenting eligible large GIOP 1.2 bodies
// (Request, Reply, LocateRequest, LocateReply — see giop.Fragmentable).
// The caller holds the connection's write mutex, which also serialises
// the writer's scratch state.
func writeMaybeFragmented(mw *giop.Writer, h giop.Header, body []byte, max int) error {
	if max > 0 && len(body) > max && h.Version == giop.V12 && giop.Fragmentable(h.Type) {
		return mw.WriteMessageFragmented(h, body, max)
	}
	return mw.WriteMessage(h, body)
}

// Listen binds the server to addr (e.g. "127.0.0.1:0") and starts
// accepting in the background. It returns the bound address.
func (s *Server) Listen(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr(), nil
}

// ListenAndActivate binds the server and records the resulting endpoint
// on o so subsequently minted IORs point at this server.
func ListenAndActivate(o *orb.ORB, addr string) (*Server, error) {
	s := NewServer(o)
	bound, err := s.Listen(addr)
	if err != nil {
		return nil, err
	}
	host, portStr, err := net.SplitHostPort(bound.String())
	if err != nil {
		return nil, err
	}
	port, err := strconv.ParseUint(portStr, 10, 16)
	if err != nil {
		return nil, err
	}
	o.SetEndpoint(host, uint16(port))
	return s, nil
}

// track registers a live connection, or reports that the server is
// closed and the connection should be dropped.
func (s *Server) track(conn net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.conns[conn] = struct{}{}
	return true
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		if !s.track(conn) {
			_ = conn.Close()
			return
		}
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

// errCancelledByPeer is the cancellation cause recorded when a client's
// GIOP CancelRequest aborts an in-flight request.
var errCancelledByPeer = errors.New("iiop: request cancelled by peer")

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		_ = conn.Close()
	}()
	// inflight maps the request IDs currently being handled to their
	// cancel functions, so a CancelRequest can abort them.
	var (
		inflightMu sync.Mutex
		inflight   = make(map[uint32]context.CancelCauseFunc)
	)
	var wmu sync.Mutex // serialises interleaved reply writes
	mw := giop.NewWriter(conn)
	var reqWG sync.WaitGroup
	defer reqWG.Wait()
	// connCtx parents every request dispatched from this connection, so
	// in-flight servants observe cancellation when the connection dies.
	// Registered AFTER the reqWG.Wait defer (defers run LIFO): the loop
	// must cancel in-flight dispatches before waiting for them, or a
	// parked servant would stall connection teardown.
	connCtx, connCancel := context.WithCancel(context.Background())
	defer connCancel()
	br := getReader(conn)
	defer putReader(br)
	ra := giop.NewReassembler()
	defer ra.Drop()
	for {
		raw, err := giop.ReadMessagePooled(br)
		if err != nil {
			if errors.Is(err, giop.ErrMessageSize) {
				// Oversized frame: the header decoded fine, so tell the
				// peer why it is being dropped before closing.
				wmu.Lock()
				_ = mw.WriteMessage(giop.Header{Version: giop.V12, Type: giop.MsgMessageError}, nil)
				wmu.Unlock()
			}
			return
		}
		if raw.Header.Type == giop.MsgCloseConnection {
			raw.Release()
			return
		}
		m, err := ra.Add(raw)
		if m != raw {
			// Add copied (or rejected) the fragment; the wire buffer is
			// ours to recycle. When m == raw the message passes through
			// and the dispatch goroutine owns it.
			raw.Release()
		}
		if err != nil {
			return // corrupt fragment stream: drop the connection
		}
		if m == nil {
			continue // waiting for more fragments
		}
		if m.Header.Type == giop.MsgCancelRequest {
			if id, ok := giop.PeekRequestID(m); ok {
				inflightMu.Lock()
				cancel := inflight[id]
				inflightMu.Unlock()
				if cancel != nil {
					cancel(errCancelledByPeer)
				}
			}
			m.Release()
			continue
		}
		reqWG.Add(1)
		go func(m *giop.Message) {
			defer reqWG.Done()
			// The request buffer is released when this dispatch is fully
			// done with it: after the handler returns and the reply (which
			// never aliases the request) has been written.
			defer m.Release()
			reqCtx := connCtx
			cancelled := func() bool { return false }
			if m.Header.Type == giop.MsgRequest || m.Header.Type == giop.MsgLocateRequest {
				if id, ok := giop.PeekRequestID(m); ok {
					ctx, cancel := context.WithCancelCause(connCtx)
					reqCtx = ctx
					cancelled = func() bool { return context.Cause(ctx) == errCancelledByPeer }
					inflightMu.Lock()
					inflight[id] = cancel
					inflightMu.Unlock()
					defer func() {
						inflightMu.Lock()
						delete(inflight, id)
						inflightMu.Unlock()
						cancel(nil)
					}()
				}
			}
			reply, err := s.handler.HandleMessage(reqCtx, m)
			if err != nil || reply == nil {
				if err != nil {
					// Protocol-level failure: tell the peer and drop.
					wmu.Lock()
					_ = mw.WriteMessage(giop.Header{
						Version: m.Header.Version, Order: m.Header.Order, Type: giop.MsgMessageError,
					}, nil)
					wmu.Unlock()
				}
				return
			}
			defer reply.Release()
			if cancelled() {
				// The client sent CancelRequest: it no longer awaits this
				// reply, so writing it would only burn bandwidth.
				return
			}
			wmu.Lock()
			_ = writeMaybeFragmented(mw, reply.Header, reply.Body, s.MaxFragment)
			wmu.Unlock()
		}(m)
	}
}

// shutdown marks the server closed and hands back the listener and live
// connections to tear down; ok is false when already closed.
func (s *Server) shutdown() (ln net.Listener, conns []net.Conn, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, nil, false
	}
	s.closed = true
	conns = make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	return s.ln, conns, true
}

// Close stops accepting and closes every live connection.
func (s *Server) Close() error {
	ln, conns, ok := s.shutdown()
	if !ok {
		return nil
	}
	var err error
	if ln != nil {
		err = ln.Close()
	}
	for _, c := range conns {
		_ = c.Close()
	}
	s.wg.Wait()
	return err
}

// DefaultCallTimeout bounds a two-way call when Transport.CallTimeout is
// left zero: a safety net against wedged connections, independent of any
// per-call context deadline.
const DefaultCallTimeout = 30 * time.Second

// Transport is the client-side IIOP transport, registered with an ORB to
// serve TagInternetIOP profiles.
type Transport struct {
	// DialTimeout bounds connection establishment (default 5s).
	DialTimeout time.Duration
	// CallTimeout bounds a single two-way request (default
	// DefaultCallTimeout; negative disables the limit, mirroring
	// MaxFragment).
	CallTimeout time.Duration
	// MaxFragment bounds outgoing GIOP 1.2 bodies (default
	// DefaultMaxFragment; negative disables fragmentation).
	MaxFragment int
}

// effectiveCallTimeout resolves the CallTimeout knob: zero means the
// default, negative means no limit.
func (t *Transport) effectiveCallTimeout() time.Duration {
	switch {
	case t.CallTimeout == 0:
		return DefaultCallTimeout
	case t.CallTimeout < 0:
		return 0
	}
	return t.CallTimeout
}

// Tag implements orb.Transport.
func (t *Transport) Tag() uint32 { return ior.TagInternetIOP }

// Endpoint implements orb.Transport.
func (t *Transport) Endpoint(profile []byte) (string, error) {
	p, err := ior.DecodeIIOPProfile(profile)
	if err != nil {
		return "", err
	}
	return p.Addr(), nil
}

// Dial implements orb.Transport. Establishment is bounded by both
// DialTimeout and ctx, whichever ends first.
func (t *Transport) Dial(ctx context.Context, profile []byte) (orb.Channel, error) {
	addr, err := t.Endpoint(profile)
	if err != nil {
		return nil, err
	}
	dt := t.DialTimeout
	if dt == 0 {
		dt = 5 * time.Second
	}
	d := net.Dialer{Timeout: dt}
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("iiop: dial %s: %w", addr, err)
	}
	maxFrag := t.MaxFragment
	if maxFrag == 0 {
		maxFrag = DefaultMaxFragment
	}
	if maxFrag < 0 {
		maxFrag = 0
	}
	c := &clientConn{
		conn:        conn,
		mw:          giop.NewWriter(conn),
		pending:     make(map[uint32]chan *giop.Message),
		callTimeout: t.effectiveCallTimeout(),
		maxFragment: maxFrag,
	}
	go c.readLoop()
	return c, nil
}

// clientConn multiplexes concurrent calls over one TCP connection.
type clientConn struct {
	conn        net.Conn
	wmu         sync.Mutex
	mw          *giop.Writer // guarded by wmu
	callTimeout time.Duration
	maxFragment int

	mu      sync.Mutex
	pending map[uint32]chan *giop.Message
	err     error
	closed  bool
}

// errConnClosed reports a connection torn down mid-call.
var errConnClosed = errors.New("iiop: connection closed")

func (c *clientConn) readLoop() {
	br := getReader(c.conn)
	defer putReader(br)
	ra := giop.NewReassembler()
	defer ra.Drop()
	for {
		raw, err := giop.ReadMessagePooled(br)
		if err != nil {
			c.fail(err)
			return
		}
		m, err := ra.Add(raw)
		if m != raw {
			raw.Release() // fragment content was copied (or rejected)
		}
		if err != nil {
			c.fail(err)
			return
		}
		if m == nil {
			continue // mid-reassembly
		}
		switch m.Header.Type {
		case giop.MsgReply, giop.MsgLocateReply:
			id, ok := giop.PeekRequestID(m)
			if !ok {
				m.Release()
				c.fail(errors.New("iiop: undecodable reply header"))
				return
			}
			c.mu.Lock()
			ch := c.pending[id]
			delete(c.pending, id)
			c.mu.Unlock()
			if ch != nil {
				// Ownership moves to the Call waiter, who releases the
				// reply once decoded.
				ch <- m
			} else {
				// Abandoned call (timeout/cancel): nobody awaits this.
				m.Release()
			}
		case giop.MsgCloseConnection:
			m.Release()
			c.fail(io.EOF)
			return
		case giop.MsgMessageError:
			m.Release()
			c.fail(errors.New("iiop: peer reported message error"))
			return
		default:
			// Requests arriving on a client connection (bidirectional
			// GIOP) are not supported by the lightweight profile.
			m.Release()
		}
	}
}

func (c *clientConn) fail(err error) {
	c.mu.Lock()
	if c.err == nil {
		c.err = err
	}
	pending := c.pending
	c.pending = make(map[uint32]chan *giop.Message)
	c.mu.Unlock()
	for _, ch := range pending {
		close(ch)
	}
	_ = c.conn.Close()
}

// register enrolls a reply channel for requestID, failing fast when the
// connection is already dead.
func (c *clientConn) register(requestID uint32, ch chan *giop.Message) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil {
		return c.err
	}
	c.pending[requestID] = ch
	return nil
}

// Call implements orb.Channel. The reply wait ends when the reply
// arrives, ctx is done, or the CallTimeout safety net fires; in the
// latter two cases the pending slot is freed and a GIOP CancelRequest is
// sent so the server can abandon the work. A reply arriving after that is
// discarded by readLoop (no pending channel), leaving the multiplexed
// connection usable.
func (c *clientConn) Call(ctx context.Context, req *giop.Message, requestID uint32) (*giop.Message, error) {
	ch := make(chan *giop.Message, 1)
	if err := c.register(requestID, ch); err != nil {
		return nil, err
	}

	if err := c.write(req); err != nil {
		c.mu.Lock()
		delete(c.pending, requestID)
		c.mu.Unlock()
		return nil, err
	}

	var timeout <-chan time.Time
	if c.callTimeout > 0 {
		tm := time.NewTimer(c.callTimeout)
		defer tm.Stop()
		timeout = tm.C
	}
	select {
	case m, ok := <-ch:
		if !ok {
			c.mu.Lock()
			err := c.err
			c.mu.Unlock()
			if err == nil {
				err = errConnClosed
			}
			return nil, err
		}
		return m, nil
	case <-ctx.Done():
		c.abandon(requestID, req)
		return nil, ctx.Err()
	case <-timeout:
		c.abandon(requestID, req)
		return nil, orb.Timeout()
	}
}

// abandon frees the pending slot of a call the client gave up on and
// notifies the server with a best-effort GIOP CancelRequest.
func (c *clientConn) abandon(requestID uint32, req *giop.Message) {
	c.mu.Lock()
	delete(c.pending, requestID)
	c.mu.Unlock()
	e := giop.GetBodyEncoder(req.Header.Order)
	giop.EncodeCancelRequest(e, &giop.CancelRequestHeader{RequestID: requestID})
	msg := giop.MessageFromEncoder(giop.Header{
		Version: req.Header.Version, Order: req.Header.Order, Type: giop.MsgCancelRequest,
	}, e)
	_ = c.write(msg)
	msg.Release()
}

// Send implements orb.Channel (oneway requests).
func (c *clientConn) Send(ctx context.Context, req *giop.Message) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return c.write(req)
}

func (c *clientConn) write(m *giop.Message) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	return writeMaybeFragmented(c.mw, m.Header, m.Body, c.maxFragment)
}

// markClosed flips the closed flag, reporting whether this caller won.
func (c *clientConn) markClosed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return false
	}
	c.closed = true
	return true
}

// Close implements orb.Channel.
func (c *clientConn) Close() error {
	if c.markClosed() {
		c.fail(errConnClosed)
	}
	return nil
}

package iiop

import (
	"context"
	"errors"
	"testing"
	"time"

	"corbalc/internal/cdr"
	"corbalc/internal/giop"
	"corbalc/internal/ior"
	"corbalc/internal/orb"
)

func TestEffectiveCallTimeout(t *testing.T) {
	cases := []struct {
		in   time.Duration
		want time.Duration
	}{
		{0, DefaultCallTimeout},            // zero means the documented default
		{-1, 0},                            // negative disables the safety net
		{-time.Hour, 0},                    // any negative value disables it
		{3 * time.Second, 3 * time.Second}, // positive taken literally
	}
	for _, tc := range cases {
		tr := &Transport{CallTimeout: tc.in}
		if got := tr.effectiveCallTimeout(); got != tc.want {
			t.Errorf("effectiveCallTimeout(%v) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

// dialRaw connects a bare clientConn to the server ORB's IIOP endpoint so
// tests can inspect the pending map directly.
func dialRaw(t *testing.T, serverORB *orb.ORB, tr *Transport) *clientConn {
	t.Helper()
	ref := serverORB.NewIOR("IDL:corbalc/test/Calc:1.0", "calc")
	p := ref.Profile(ior.TagInternetIOP)
	if p == nil {
		t.Fatal("server IOR carries no IIOP profile")
	}
	ch, err := tr.Dial(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	cc := ch.(*clientConn)
	t.Cleanup(func() { _ = cc.Close() })
	return cc
}

// rawRequest builds a GIOP 1.2 request for an argument-less operation.
func rawRequest(t *testing.T, id uint32, op string) *giop.Message {
	t.Helper()
	e := giop.NewBodyEncoder(cdr.LittleEndian)
	err := giop.EncodeRequest(e, giop.V12, &giop.RequestHeader{
		RequestID:        id,
		ResponseExpected: true,
		ObjectKey:        []byte("calc"),
		Operation:        op,
	})
	if err != nil {
		t.Fatal(err)
	}
	return &giop.Message{
		Header: giop.Header{Version: giop.V12, Order: cdr.LittleEndian, Type: giop.MsgRequest},
		Body:   e.Bytes(),
	}
}

func (c *clientConn) pendingLen() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.pending)
}

// A cancelled call must free its pending slot immediately (no map leak)
// and leave the multiplexed connection usable for later calls, with the
// late reply for the cancelled request silently discarded.
func TestCancelFreesPendingSlotAndLateReplyDiscarded(t *testing.T) {
	serverORB, _ := startServer(t, "calc", calcServant{})
	cc := dialRaw(t, serverORB, &Transport{})

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	_, err := cc.Call(ctx, rawRequest(t, 1, "slow"), 1) // servant sleeps 200ms
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := cc.pendingLen(); n != 0 {
		t.Fatalf("pending slots after cancel = %d, want 0", n)
	}

	// The same connection keeps working: the late "slow" reply (due in
	// ~170ms) must be dropped by the read loop, not delivered to this
	// call or wedging the mux.
	reply, err := cc.Call(context.Background(), rawRequest(t, 2, "slow"), 2)
	if err != nil {
		t.Fatalf("second call on same conn: %v", err)
	}
	var hdrID uint32
	if hdrID, _ = giop.PeekRequestID(reply); hdrID != 2 {
		t.Fatalf("reply request ID = %d, want 2", hdrID)
	}
	if n := cc.pendingLen(); n != 0 {
		t.Fatalf("pending slots after completed call = %d, want 0", n)
	}
}

// The CallTimeout safety net must also free the slot (and keep the
// connection usable), returning CORBA::TIMEOUT rather than a ctx error.
func TestCallTimeoutFreesPendingSlot(t *testing.T) {
	serverORB, _ := startServer(t, "calc", calcServant{})
	cc := dialRaw(t, serverORB, &Transport{CallTimeout: 30 * time.Millisecond})

	_, err := cc.Call(context.Background(), rawRequest(t, 1, "slow"), 1)
	var sysErr *orb.SystemException
	if !errors.As(err, &sysErr) || sysErr.Name != "TIMEOUT" {
		t.Fatalf("err = %v, want CORBA::TIMEOUT", err)
	}
	if n := cc.pendingLen(); n != 0 {
		t.Fatalf("pending slots after timeout = %d, want 0", n)
	}
}

// A GIOP CancelRequest must reach the in-flight servant as context
// cancellation, and the server must not write a reply for the cancelled
// request.
func TestServerHonorsCancelRequest(t *testing.T) {
	started := make(chan struct{}, 1)
	observed := make(chan error, 1)
	servant := orb.ContextServantFunc{
		RepoID: "IDL:corbalc/test/Calc:1.0",
		Fn: func(ctx context.Context, op string, args *cdr.Decoder, reply *cdr.Encoder) error {
			started <- struct{}{}
			select {
			case <-ctx.Done():
				observed <- context.Cause(ctx)
				return orb.Timeout()
			case <-time.After(2 * time.Second):
				observed <- nil
				reply.WriteLong(1)
				return nil
			}
		},
	}
	serverORB, _ := startServer(t, "calc", servant)
	cc := dialRaw(t, serverORB, &Transport{})

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := cc.Call(ctx, rawRequest(t, 7, "block"), 7)
		done <- err
	}()
	<-started // servant is in-flight
	cancel()  // emits CancelRequest on the wire

	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("client err = %v, want context.Canceled", err)
	}
	select {
	case cause := <-observed:
		if cause == nil {
			t.Fatal("servant timed out instead of observing cancellation")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("servant never observed cancellation")
	}

	// The server must have skipped the reply: a follow-up call gets its
	// own answer, not a stale error reply for request 7.
	fast := orb.ServantFunc{
		RepoID: "IDL:corbalc/test/Calc:1.0",
		Fn: func(op string, args *cdr.Decoder, reply *cdr.Encoder) error {
			reply.WriteLong(42)
			return nil
		},
	}
	serverORB.Activate("calc", fast)
	reply, err := cc.Call(context.Background(), rawRequest(t, 8, "fast"), 8)
	if err != nil {
		t.Fatalf("follow-up call: %v", err)
	}
	if id, _ := giop.PeekRequestID(reply); id != 8 {
		t.Fatalf("reply request ID = %d, want 8", id)
	}
}

// A client-side deadline that expires before the reply arrives surfaces
// as context.DeadlineExceeded from the channel (the orb layer maps it to
// CORBA::TIMEOUT), and the slot is freed.
func TestContextDeadlineOnChannel(t *testing.T) {
	serverORB, _ := startServer(t, "calc", calcServant{})
	cc := dialRaw(t, serverORB, &Transport{})

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	_, err := cc.Call(ctx, rawRequest(t, 3, "slow"), 3)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if n := cc.pendingLen(); n != 0 {
		t.Fatalf("pending slots after deadline = %d, want 0", n)
	}
}

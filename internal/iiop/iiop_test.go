package iiop

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"corbalc/internal/cdr"
	"corbalc/internal/giop"
	"corbalc/internal/orb"
)

type calcServant struct{ sleep time.Duration }

func (calcServant) RepositoryID() string { return "IDL:corbalc/test/Calc:1.0" }

func (s calcServant) Invoke(op string, args *cdr.Decoder, reply *cdr.Encoder) error {
	switch op {
	case "square":
		n, err := args.ReadLong()
		if err != nil {
			return err
		}
		if s.sleep > 0 {
			time.Sleep(s.sleep)
		}
		reply.WriteLong(n * n)
		return nil
	case "slow":
		time.Sleep(200 * time.Millisecond)
		reply.WriteLong(1)
		return nil
	case "boom":
		return &orb.UserException{ID: "IDL:corbalc/test/Overflow:1.0"}
	}
	return orb.BadOperation()
}

// startServer launches an ORB + IIOP server pair; the cleanup closes it.
func startServer(t testing.TB, servantKey string, s orb.Servant) (*orb.ORB, *Server) {
	t.Helper()
	serverORB := orb.NewORB()
	srv, err := ListenAndActivate(serverORB, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	serverORB.Activate(servantKey, s)
	return serverORB, srv
}

func newClient(t testing.TB, opts ...orb.Option) *orb.ORB {
	t.Helper()
	c := orb.NewORB(opts...)
	c.RegisterTransport(&Transport{CallTimeout: 5 * time.Second})
	t.Cleanup(c.Shutdown)
	return c
}

func TestEndToEndOverTCP(t *testing.T) {
	serverORB, _ := startServer(t, "calc", calcServant{})
	iorStr := serverORB.NewIOR("IDL:corbalc/test/Calc:1.0", "calc").String()

	client := newClient(t)
	ref, err := client.ResolveStr(iorStr)
	if err != nil {
		t.Fatal(err)
	}
	var sq int32
	err = ref.Invoke("square",
		func(e *cdr.Encoder) { e.WriteLong(12) },
		func(d *cdr.Decoder) error {
			var err error
			sq, err = d.ReadLong()
			return err
		})
	if err != nil {
		t.Fatal(err)
	}
	if sq != 144 {
		t.Fatalf("square = %d", sq)
	}
}

func TestEndToEndGIOP10BigEndian(t *testing.T) {
	serverORB, _ := startServer(t, "calc", calcServant{})
	iorStr := serverORB.NewIOR("IDL:corbalc/test/Calc:1.0", "calc").String()

	client := newClient(t, orb.WithGIOPVersion(giop.V10), orb.WithByteOrder(cdr.BigEndian))
	ref, err := client.ResolveStr(iorStr)
	if err != nil {
		t.Fatal(err)
	}
	var sq int32
	err = ref.Invoke("square",
		func(e *cdr.Encoder) { e.WriteLong(9) },
		func(d *cdr.Decoder) error {
			var err error
			sq, err = d.ReadLong()
			return err
		})
	if err != nil || sq != 81 {
		t.Fatalf("sq=%d err=%v", sq, err)
	}
}

func TestUserExceptionOverTCP(t *testing.T) {
	serverORB, _ := startServer(t, "calc", calcServant{})
	client := newClient(t)
	ref := client.NewRef(serverORB.NewIOR("IDL:corbalc/test/Calc:1.0", "calc"))
	err := ref.Invoke("boom", nil, nil)
	if !orb.IsUserException(err, "IDL:corbalc/test/Overflow:1.0") {
		t.Fatalf("err = %v", err)
	}
}

func TestConcurrentCallsMultiplexed(t *testing.T) {
	serverORB, _ := startServer(t, "calc", calcServant{sleep: 2 * time.Millisecond})
	client := newClient(t)
	ref := client.NewRef(serverORB.NewIOR("IDL:corbalc/test/Calc:1.0", "calc"))

	var wg sync.WaitGroup
	errs := make(chan error, 128)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := int32(1); i <= 8; i++ {
				n := int32(g)*100 + i
				var sq int32
				err := ref.Invoke("square",
					func(e *cdr.Encoder) { e.WriteLong(n) },
					func(d *cdr.Decoder) error {
						var err error
						sq, err = d.ReadLong()
						return err
					})
				if err != nil {
					errs <- err
					return
				}
				if sq != n*n {
					errs <- fmt.Errorf("square(%d) = %d", n, sq)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// All 128 calls must have flowed through a single multiplexed
	// connection (one cached channel per endpoint).
	if got := serverORB.RequestsServed(); got != 128 {
		t.Fatalf("served = %d", got)
	}
}

func TestServerCloseUnblocksClients(t *testing.T) {
	serverORB, srv := startServer(t, "calc", calcServant{})
	client := newClient(t)
	ref := client.NewRef(serverORB.NewIOR("IDL:corbalc/test/Calc:1.0", "calc"))

	// Prime the connection.
	if err := ref.Invoke("square", func(e *cdr.Encoder) { e.WriteLong(2) }, func(d *cdr.Decoder) error {
		_, err := d.ReadLong()
		return err
	}); err != nil {
		t.Fatal(err)
	}
	_ = srv.Close()
	err := ref.Invoke("square", func(e *cdr.Encoder) { e.WriteLong(3) }, nil)
	var se *orb.SystemException
	if !errors.As(err, &se) {
		t.Fatalf("err after close = %v", err)
	}
}

func TestCallTimeout(t *testing.T) {
	serverORB, _ := startServer(t, "calc", calcServant{})
	client := orb.NewORB()
	client.RegisterTransport(&Transport{CallTimeout: 30 * time.Millisecond})
	t.Cleanup(client.Shutdown)
	ref := client.NewRef(serverORB.NewIOR("IDL:corbalc/test/Calc:1.0", "calc"))
	err := ref.Invoke("slow", nil, nil)
	var se *orb.SystemException
	if !errors.As(err, &se) {
		t.Fatalf("err = %v", err)
	}
	// The slow reply arriving later must not corrupt a subsequent call.
	time.Sleep(250 * time.Millisecond)
	var sq int32
	if err := ref.Invoke("square", func(e *cdr.Encoder) { e.WriteLong(4) }, func(d *cdr.Decoder) error {
		var err error
		sq, err = d.ReadLong()
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if sq != 16 {
		t.Fatalf("square = %d", sq)
	}
}

func TestDialFailure(t *testing.T) {
	client := newClient(t)
	// Port 1 on loopback is almost certainly closed.
	ref, err := client.ResolveStr("corbaloc::127.0.0.1:1/nothing")
	if err != nil {
		t.Fatal(err)
	}
	callErr := ref.Invoke("op", nil, nil)
	var se *orb.SystemException
	if !errors.As(callErr, &se) || se.Name != "COMM_FAILURE" {
		t.Fatalf("err = %v", callErr)
	}
}

func TestOnewayOverTCP(t *testing.T) {
	serverORB, _ := startServer(t, "calc", calcServant{})
	client := newClient(t)
	ref := client.NewRef(serverORB.NewIOR("IDL:corbalc/test/Calc:1.0", "calc"))
	if err := ref.InvokeOneway("square", func(e *cdr.Encoder) { e.WriteLong(3) }); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for serverORB.RequestsServed() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("oneway request never served")
		}
		time.Sleep(time.Millisecond)
	}
}

func BenchmarkTCPRoundTrip(b *testing.B) {
	serverORB := orb.NewORB()
	srv, err := ListenAndActivate(serverORB, "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	serverORB.Activate("calc", calcServant{})

	client := orb.NewORB()
	client.RegisterTransport(&Transport{})
	defer client.Shutdown()
	ref := client.NewRef(serverORB.NewIOR("IDL:corbalc/test/Calc:1.0", "calc"))

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		err := ref.Invoke("square",
			func(e *cdr.Encoder) { e.WriteLong(7) },
			func(d *cdr.Decoder) error { _, err := d.ReadLong(); return err })
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTCPConcurrent(b *testing.B) {
	serverORB := orb.NewORB()
	srv, err := ListenAndActivate(serverORB, "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	serverORB.Activate("calc", calcServant{})

	client := orb.NewORB()
	client.RegisterTransport(&Transport{})
	defer client.Shutdown()
	ref := client.NewRef(serverORB.NewIOR("IDL:corbalc/test/Calc:1.0", "calc"))

	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			err := ref.Invoke("square",
				func(e *cdr.Encoder) { e.WriteLong(7) },
				func(d *cdr.Decoder) error { _, err := d.ReadLong(); return err })
			if err != nil {
				b.Fatal(err)
			}
		}
	})
}

// blobServant echoes large payloads, for the fragmentation tests.
type blobServant struct{}

func (blobServant) RepositoryID() string { return "IDL:corbalc/test/Blob:1.0" }

func (blobServant) Invoke(op string, args *cdr.Decoder, reply *cdr.Encoder) error {
	switch op {
	case "echo_blob":
		b, err := args.ReadOctetSeq()
		if err != nil {
			return err
		}
		reply.WriteOctetSeq(b)
		return nil
	case "make_blob":
		n, err := args.ReadLong()
		if err != nil {
			return err
		}
		blob := make([]byte, n)
		for i := range blob {
			blob[i] = byte(i)
		}
		reply.WriteOctetSeq(blob)
		return nil
	}
	return orb.BadOperation()
}

func TestFragmentedTransfersOverTCP(t *testing.T) {
	serverORB := orb.NewORB()
	srv, err := ListenAndActivate(serverORB, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.MaxFragment = 1024 // force reply fragmentation
	serverORB.Activate("blob", blobServant{})

	client := orb.NewORB()
	client.RegisterTransport(&Transport{MaxFragment: 1024, CallTimeout: 10 * time.Second})
	defer client.Shutdown()
	ref := client.NewRef(serverORB.NewIOR("IDL:corbalc/test/Blob:1.0", "blob"))

	// Large request body (fragmented on the way out) echoed back
	// (fragmented on the way home).
	payload := make([]byte, 100<<10)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	var got []byte
	err = ref.Invoke("echo_blob",
		func(e *cdr.Encoder) { e.WriteOctetSeq(payload) },
		func(d *cdr.Decoder) error { var e error; got, e = d.ReadOctetSeq(); return e })
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(payload) {
		t.Fatalf("echo = %d bytes, want %d", len(got), len(payload))
	}
	for i := range got {
		if got[i] != payload[i] {
			t.Fatalf("corruption at byte %d", i)
		}
	}

	// Concurrent large transfers interleave fragments on one connection.
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(n int32) {
			defer wg.Done()
			var blob []byte
			err := ref.Invoke("make_blob",
				func(e *cdr.Encoder) { e.WriteLong(n) },
				func(d *cdr.Decoder) error { var e error; blob, e = d.ReadOctetSeq(); return e })
			if err != nil {
				errs <- err
				return
			}
			if int32(len(blob)) != n {
				errs <- fmt.Errorf("blob = %d bytes, want %d", len(blob), n)
				return
			}
			for i := range blob {
				if blob[i] != byte(i) {
					errs <- fmt.Errorf("blob %d corrupt at %d", n, i)
					return
				}
			}
		}(int32(8<<10 + g*4096))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// Asynchronous client-side primitives: CallAsync registers a reply slot
// in the connection's demultiplexer and returns without parking a
// goroutine on it — the future's Wait/Ready poll the slot instead — and
// SendOwned hands a oneway frame to the write coalescer, which releases
// the pooled buffer after the batch carrying it flushes (SyncNone).
package iiop

import (
	"context"

	"corbalc/internal/giop"
	"corbalc/internal/orb"
)

// CallAsync implements orb.AsyncChannel: the request is registered in
// the pending map and written (through the coalescer, so it group-commits
// with concurrent traffic) before returning; the reply slot comes back
// as an orb.PendingReply. The request buffer is not retained — the
// caller may recycle it once CallAsync returns.
func (c *clientConn) CallAsync(ctx context.Context, req *giop.Message, requestID uint32) (orb.PendingReply, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	ch := getReplyChan()
	if err := c.register(requestID, ch); err != nil {
		return nil, err
	}
	if err := c.write(req); err != nil {
		// Not recycled: a concurrent fail() may already have snapshotted
		// (and be closing) this channel.
		c.mu.Lock()
		delete(c.pending, requestID)
		c.mu.Unlock()
		return nil, err
	}
	return &pendingReply{c: c, ch: ch, id: requestID, hdr: req.Header}, nil
}

// SendOwned implements orb.OnewayChannel: ownership of req moves to the
// write coalescer on success (released after its batch flushes); on
// error the caller retains the message and may retry another profile.
func (c *clientConn) SendOwned(ctx context.Context, req *giop.Message) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return c.co.writeOwned(req, c.maxFragment)
}

// pendingReply is one registered reply slot on a multiplexed connection:
// the iiop realisation of orb.PendingReply. The owning Future serialises
// Recv/TryRecv/Abandon, so the only concurrency here is with the
// connection's readLoop, reaper and fail — all of which follow the
// delete-then-deliver ownership handoff on the one-shot channel.
type pendingReply struct {
	c   *clientConn
	ch  chan *giop.Message
	id  uint32
	hdr giop.Header // request dialect, for the CancelRequest
}

// Recv implements orb.PendingReply. A ctx expiry returns ctx's error
// without abandoning the call — the slot stays registered and a later
// Recv (or TryRecv) can still collect the reply.
func (p *pendingReply) Recv(ctx context.Context) (*giop.Message, error) {
	if done := ctx.Done(); done != nil {
		select {
		case m, ok := <-p.ch:
			return p.consume(m, ok)
		case <-done:
			return nil, ctx.Err()
		}
	}
	m, ok := <-p.ch
	return p.consume(m, ok)
}

// TryRecv implements orb.PendingReply.
func (p *pendingReply) TryRecv() (*giop.Message, bool, error) {
	select {
	case m, ok := <-p.ch:
		m, err := p.consume(m, ok)
		return m, true, err
	default:
		return nil, false, nil
	}
}

// consume maps a delivery on the reply channel to the call outcome,
// recycling the channel on the paths where the delivery was provably its
// last traffic (mirroring Call).
func (p *pendingReply) consume(m *giop.Message, ok bool) (*giop.Message, error) {
	switch {
	case !ok:
		// fail closed the channel; it cannot be recycled.
		p.c.mu.Lock()
		err := p.c.err
		p.c.mu.Unlock()
		if err == nil {
			err = errConnClosed
		}
		return nil, err
	case m == nil:
		// The reaper expired the call and freed the pending slot.
		p.c.sendCancel(p.id, p.hdr)
		replyChanPool.Put(p.ch)
		return nil, orb.Timeout()
	}
	replyChanPool.Put(p.ch)
	return m, nil
}

// Abandon implements orb.PendingReply, freeing the demux slot and
// notifying the server; a reply that raced in is released rather than
// left pinned in the one-shot channel.
func (p *pendingReply) Abandon() {
	p.c.abandonCall(p.id, p.hdr, p.ch)
}

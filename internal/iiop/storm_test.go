package iiop

// Regression tests for the bounded-dispatch layer: the server used to
// spawn one goroutine per request (go handleRequest(...) straight from
// the read loop), so a request storm grew the process by thousands of
// goroutines. Dispatch now runs on a fixed worker pool fed by a bounded
// queue; these tests pin the goroutine ceiling and the overflow
// behaviour (GIOP TRANSIENT, not queue growth).

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"corbalc/internal/cdr"
	"corbalc/internal/leak"
	"corbalc/internal/orb"
)

// startTunedServer is startServer with dispatch knobs, which must be
// set before Listen.
func startTunedServer(t testing.TB, key string, servant orb.Servant, maxDispatch, queue int) (*orb.ORB, *Server) {
	t.Helper()
	serverORB := orb.NewORB()
	srv := NewServer(serverORB)
	srv.MaxDispatch = maxDispatch
	srv.DispatchQueue = queue
	bound, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	if err := activate(serverORB, bound); err != nil {
		t.Fatal(err)
	}
	serverORB.Activate(key, servant)
	return serverORB, srv
}

// TestDispatchStormGoroutineCeiling throws ten thousand requests at a
// server whose worker pool is 8 deep and asserts the process-wide
// goroutine count stays bounded by senders + workers + connections +
// O(1) — the regression test for the unbounded per-request spawn.
func TestDispatchStormGoroutineCeiling(t *testing.T) {
	leak.Check(t)
	serverORB, _ := startTunedServer(t, "calc", calcServant{}, 8, 64)
	client := newClient(t)
	ref := client.NewRef(serverORB.NewIOR("IDL:corbalc/test/Calc:1.0", "calc"))

	// Warm the connection pool so dialing does not happen mid-storm.
	for i := 0; i < 8; i++ {
		if err := ref.Invoke("square",
			func(e *cdr.Encoder) { e.WriteLong(3) },
			func(d *cdr.Decoder) error { _, err := d.ReadLong(); return err },
		); err != nil {
			t.Fatal(err)
		}
	}

	const senders = 16
	const total = 10000
	base := runtime.NumGoroutine()
	// Everything the storm may legitimately add beyond the warm
	// baseline: the senders, the sampler, and headroom for transient
	// runtime helpers. The pre-pool server would exceed this by
	// thousands (one goroutine per queued request).
	ceiling := base + senders + 1 + 16

	var peak atomic.Int64
	stop := make(chan struct{})
	var sampler sync.WaitGroup
	sampler.Add(1)
	go func() {
		defer sampler.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if n := int64(runtime.NumGoroutine()); n > peak.Load() {
				peak.Store(n)
			}
			runtime.Gosched()
		}
	}()

	var wg sync.WaitGroup
	errs := make(chan error, senders)
	for g := 0; g < senders; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < total/senders; i++ {
				// Oneways arrive as fast as the client can push them —
				// the worst case for a server that spawned per request.
				// The bounded queue may shed some under overload; the
				// test asserts the ceiling, not full delivery.
				if err := ref.InvokeOneway("square", func(e *cdr.Encoder) { e.WriteLong(int32(g + 2)) }); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	sampler.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if p := int(peak.Load()); p > ceiling {
		t.Fatalf("goroutine peak %d under %d-request storm exceeds ceiling %d (baseline %d + %d senders + sampler + slack): dispatch is growing goroutines per request",
			p, total, ceiling, base, senders)
	}
}

// TestDispatchOverflowAnswersTransient fills the (deliberately tiny)
// dispatch capacity with a parked call and verifies the next request is
// refused with CORBA::TRANSIENT — the standard retry-later signal —
// rather than queued without bound or left unanswered.
func TestDispatchOverflowAnswersTransient(t *testing.T) {
	leak.Check(t)
	park := &parkServant{parked: make(chan struct{}), cancelled: make(chan error, 1)}
	serverORB, _ := startTunedServer(t, "park", park, 1, -1) // one worker, unbuffered queue
	serverORB.Activate("calc", calcServant{})
	client := newClient(t)
	parkRef := client.NewRef(serverORB.NewIOR("IDL:corbalc/test/Park:1.0", "park"))
	calcRef := client.NewRef(serverORB.NewIOR("IDL:corbalc/test/Calc:1.0", "calc"))

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- parkRef.InvokeContext(ctx, "park", nil, nil) }()
	select {
	case <-park.parked:
	case <-time.After(5 * time.Second):
		t.Fatal("parked call never reached the servant")
	}

	// The only worker is parked and the queue holds nothing: this call
	// must come back refused, promptly.
	err := calcRef.Invoke("square",
		func(e *cdr.Encoder) { e.WriteLong(3) },
		func(d *cdr.Decoder) error { _, err := d.ReadLong(); return err })
	var se *orb.SystemException
	if !errors.As(err, &se) || se.Name != "TRANSIENT" {
		t.Fatalf("overflowed call returned %v, want CORBA::TRANSIENT", err)
	}

	cancel() // release the parked servant
	select {
	case <-park.cancelled:
	case <-time.After(5 * time.Second):
		t.Fatal("parked servant never released")
	}
	if err := <-done; err == nil {
		t.Fatal("cancelled parked call reported success")
	}

	// With the worker free again the server must serve normally.
	var sq int32
	if err := calcRef.Invoke("square",
		func(e *cdr.Encoder) { e.WriteLong(5) },
		func(d *cdr.Decoder) error {
			var err error
			sq, err = d.ReadLong()
			return err
		}); err != nil {
		t.Fatal(err)
	}
	if sq != 25 {
		t.Fatalf("square(5) = %d after overflow recovery", sq)
	}
}

package iiop

// Regression tests for the write coalescer's failure path: a connection
// that dies while a flush is in flight must release every blocked
// follower, poison future writers, and never wedge a leader handoff —
// whatever the interleaving between the failing write, followers
// enqueueing into the next batch, and a new writer taking the flush
// token.

import (
	"errors"
	"io"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"corbalc/internal/giop"
	"corbalc/internal/leak"
)

// blockedConn blocks its first Write until released, then that write —
// and every later one — fails as if the peer closed mid-flush.
type blockedConn struct {
	release chan struct{}
	writes  atomic.Int32
}

func (c *blockedConn) Write(p []byte) (int, error) {
	if c.writes.Add(1) == 1 {
		<-c.release
	}
	return 0, io.ErrClosedPipe
}

// flakyConn serves a fixed number of writes, then fails forever.
type flakyConn struct {
	mu   sync.Mutex
	left int
}

func (c *flakyConn) Write(p []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.left <= 0 {
		return 0, io.ErrClosedPipe
	}
	c.left--
	return len(p), nil
}

func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(100 * time.Microsecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestCoalescerCloseReleasesFollowers pins the exact interleaving the
// pipeline can produce under churn: the leader is stuck in the socket
// write when the connection dies, while followers have already queued
// frames into the next batch and block awaiting its sequence. The
// sticky error must reach the leader, every follower, and any late
// writer — nobody may stay parked on the condition variable.
func TestCoalescerCloseReleasesFollowers(t *testing.T) {
	leak.Check(t)
	conn := &blockedConn{release: make(chan struct{})}
	co := newCoalescer(conn, 0)
	h := giop.Header{Version: giop.V12, Type: giop.MsgRequest}

	leaderErr := make(chan error, 1)
	go func() { leaderErr <- co.write(h, []byte("leader"), 0) }()
	waitUntil(t, "leader to block in the socket write", func() bool {
		return conn.writes.Load() == 1
	})

	const followers = 16
	var wg sync.WaitGroup
	errs := make([]error, followers)
	for i := 0; i < followers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = co.write(h, []byte("follower"), 0)
		}(i)
	}
	waitUntil(t, "followers to enqueue into the next batch", func() bool {
		co.mu.Lock()
		defer co.mu.Unlock()
		return co.pend.frames == followers
	})

	close(conn.release) // the connection dies under the in-flight flush
	wg.Wait()
	for i, err := range errs {
		if !errors.Is(err, io.ErrClosedPipe) {
			t.Errorf("follower %d: err = %v, want the sticky close error", i, err)
		}
	}
	if err := <-leaderErr; !errors.Is(err, io.ErrClosedPipe) {
		t.Errorf("leader: err = %v, want the sticky close error", err)
	}
	// The poisoned coalescer fails fast; a late writer must not become a
	// leader with an un-flushable batch.
	if err := co.write(h, []byte("late"), 0); !errors.Is(err, io.ErrClosedPipe) {
		t.Errorf("post-close write: err = %v, want the sticky close error", err)
	}
}

// TestCoalescerLeaderHandoffRacingClose drives packs of writers through
// coalescers whose connections fail at varying points, so the failing
// write keeps landing on different sides of a leader handoff (during a
// flush, between flush and stepDown, on the first write of a fresh
// leader). Every writer must return; under -race this also shakes out
// unsynchronised batch recycling on the poison path.
func TestCoalescerLeaderHandoffRacingClose(t *testing.T) {
	leak.Check(t)
	h := giop.Header{Version: giop.V12, Type: giop.MsgRequest}
	for round := 0; round < 32; round++ {
		co := newCoalescer(&flakyConn{left: round % 9}, 0)
		var wg sync.WaitGroup
		var failed atomic.Int32
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 16; i++ {
					if err := co.write(h, []byte("frame"), 0); err != nil {
						failed.Add(1)
					}
				}
			}()
		}
		wg.Wait() // terminating at all is the assertion
		if failed.Load() == 0 {
			t.Fatalf("round %d: connection never failed; the race under test did not occur", round)
		}
		if co.stickyErr() == nil {
			t.Fatalf("round %d: writers failed but the coalescer is not poisoned", round)
		}
	}
}

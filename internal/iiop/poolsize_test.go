package iiop

import (
	"runtime"
	"testing"
)

// TestDefaultPoolSize pins the documented default: one stripe per core,
// capped at eight (README tuning table, DESIGN.md §10/§14.2). The docs
// and code disagreed once; this test keeps them honest.
func TestDefaultPoolSize(t *testing.T) {
	want := runtime.GOMAXPROCS(0)
	if want > 8 {
		want = 8
	}
	if got := DefaultPoolSize(); got != want {
		t.Fatalf("DefaultPoolSize() = %d, want min(8, GOMAXPROCS) = %d", got, want)
	}
}

// TestChannelPoolSizeKnob pins the PoolSize knob convention: zero means
// the default, negative means one multiplexed connection.
func TestChannelPoolSizeKnob(t *testing.T) {
	if got := (&Transport{}).ChannelPoolSize(); got != DefaultPoolSize() {
		t.Fatalf("zero PoolSize = %d, want default %d", got, DefaultPoolSize())
	}
	if got := (&Transport{PoolSize: -1}).ChannelPoolSize(); got != 1 {
		t.Fatalf("negative PoolSize = %d, want 1", got)
	}
	if got := (&Transport{PoolSize: 3}).ChannelPoolSize(); got != 3 {
		t.Fatalf("explicit PoolSize = %d, want 3", got)
	}
}

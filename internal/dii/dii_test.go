package dii

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"corbalc/internal/cdr"
	"corbalc/internal/idl"
	"corbalc/internal/orb"
)

const calcIDL = `
module calc {
  exception DivideByZero { string detail; long numerator; };

  interface Calculator {
    readonly attribute long long call_count;
    attribute string label;

    long add(in long a, in long b);
    long divmod(in long a, in long b, out long remainder) raises (DivideByZero);
    void scale(inout double value, in double factor);
    string describe();
    oneway void reset();
  };
};
`

// calcServant implements the Calculator contract by hand (the server
// side would normally be another component; here we check the client
// side DII against a known wire behaviour).
type calcServant struct {
	calls atomic.Int64
	label atomic.Value
}

func (s *calcServant) RepositoryID() string { return "IDL:calc/Calculator:1.0" }

func (s *calcServant) Invoke(op string, args *cdr.Decoder, reply *cdr.Encoder) error {
	s.calls.Add(1)
	switch op {
	case "_get_call_count":
		reply.WriteLongLong(s.calls.Load())
		return nil
	case "_get_label":
		v, _ := s.label.Load().(string)
		reply.WriteString(v)
		return nil
	case "_set_label":
		v, err := args.ReadString()
		if err != nil {
			return err
		}
		s.label.Store(v)
		return nil
	case "add":
		a, err := args.ReadLong()
		if err != nil {
			return err
		}
		b, err := args.ReadLong()
		if err != nil {
			return err
		}
		reply.WriteLong(a + b)
		return nil
	case "divmod":
		a, err := args.ReadLong()
		if err != nil {
			return err
		}
		b, err := args.ReadLong()
		if err != nil {
			return err
		}
		if b == 0 {
			return &orb.UserException{
				ID: "IDL:calc/DivideByZero:1.0",
				Payload: func(e *cdr.Encoder) {
					e.WriteString("division by zero")
					e.WriteLong(a)
				},
			}
		}
		reply.WriteLong(a / b)
		reply.WriteLong(a % b) // out parameter after return value
		return nil
	case "scale":
		v, err := args.ReadDouble()
		if err != nil {
			return err
		}
		f, err := args.ReadDouble()
		if err != nil {
			return err
		}
		reply.WriteDouble(v * f) // inout comes back in the reply
		return nil
	case "describe":
		reply.WriteString("a calculator")
		return nil
	case "reset":
		s.calls.Store(0)
		return nil
	}
	return orb.BadOperation()
}

func bind(t *testing.T) (*Object, *calcServant) {
	t.Helper()
	repo := idl.NewRepository()
	if err := repo.ParseString("calc.idl", calcIDL); err != nil {
		t.Fatal(err)
	}
	o := orb.NewORB()
	sv := &calcServant{}
	ref := o.NewRef(o.Activate("calc", sv))
	obj, err := BindByID(repo, ref, "IDL:calc/Calculator:1.0")
	if err != nil {
		t.Fatal(err)
	}
	return obj, sv
}

func TestCallWithReturn(t *testing.T) {
	obj, _ := bind(t)
	res, err := obj.Call("add", int32(20), int32(22))
	if err != nil {
		t.Fatal(err)
	}
	if res.Return != int32(42) {
		t.Fatalf("add = %v (%T)", res.Return, res.Return)
	}
	// Untyped Go ints are accepted and range-checked by the dynamic
	// marshaller.
	res, err = obj.Call("add", 1, 2)
	if err != nil || res.Return != int32(3) {
		t.Fatalf("add ints = %v, %v", res.Return, err)
	}
}

func TestOutParameter(t *testing.T) {
	obj, _ := bind(t)
	res, err := obj.Call("divmod", int32(17), int32(5))
	if err != nil {
		t.Fatal(err)
	}
	if res.Return != int32(3) || res.Out["remainder"] != int32(2) {
		t.Fatalf("divmod = %v rem %v", res.Return, res.Out["remainder"])
	}
}

func TestInOutParameter(t *testing.T) {
	obj, _ := bind(t)
	res, err := obj.Call("scale", 2.5, 4.0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Out["value"] != 10.0 {
		t.Fatalf("scale out = %v", res.Out)
	}
	if res.Return != nil {
		t.Fatalf("void op returned %v", res.Return)
	}
}

func TestTypedException(t *testing.T) {
	obj, _ := bind(t)
	_, err := obj.Call("divmod", int32(9), int32(0))
	var ex *Exception
	if !errors.As(err, &ex) {
		t.Fatalf("err = %v (%T)", err, err)
	}
	if ex.Type.ScopedName() != "calc::DivideByZero" {
		t.Fatalf("exception type = %s", ex.Type.ScopedName())
	}
	if ex.Members["detail"] != "division by zero" || ex.Members["numerator"] != int32(9) {
		t.Fatalf("members = %v", ex.Members)
	}
}

func TestAttributes(t *testing.T) {
	obj, _ := bind(t)
	if err := obj.Set("label", "mine"); err != nil {
		t.Fatal(err)
	}
	v, err := obj.Get("label")
	if err != nil || v != "mine" {
		t.Fatalf("label = %v, %v", v, err)
	}
	// Readonly attribute has a getter but no setter.
	if _, err := obj.Get("call_count"); err != nil {
		t.Fatal(err)
	}
	if err := obj.Set("call_count", int64(0)); !errors.Is(err, ErrNoOperation) {
		t.Fatalf("setting readonly attr: %v", err)
	}
}

func TestOneway(t *testing.T) {
	obj, sv := bind(t)
	if _, err := obj.Call("add", 1, 1); err != nil {
		t.Fatal(err)
	}
	res, err := obj.Call("reset")
	if err != nil || res.Return != nil {
		t.Fatalf("reset: %v, %v", res, err)
	}
	if sv.calls.Load() != 0 {
		t.Fatalf("calls after reset = %d", sv.calls.Load())
	}
}

func TestCallErrors(t *testing.T) {
	obj, _ := bind(t)
	if _, err := obj.Call("no_such_op"); !errors.Is(err, ErrNoOperation) {
		t.Fatalf("unknown op: %v", err)
	}
	if _, err := obj.Call("add", 1); !errors.Is(err, ErrArity) {
		t.Fatalf("arity: %v", err)
	}
	if _, err := obj.Call("add", "one", "two"); err == nil {
		t.Fatal("type mismatch accepted")
	}
}

func TestBindErrors(t *testing.T) {
	repo := idl.NewRepository()
	if err := repo.ParseString("x.idl", `struct S { long x; };`); err != nil {
		t.Fatal(err)
	}
	o := orb.NewORB()
	ref := o.NewRef(o.NewIOR("IDL:S:1.0", "k"))
	if _, err := BindByID(repo, ref, "IDL:nothing:1.0"); err == nil {
		t.Fatal("unknown repo id accepted")
	}
	st, _ := repo.LookupType("S")
	if _, err := Bind(ref, st); err == nil {
		t.Fatal("non-interface accepted")
	}
}

func TestSignatureMemoized(t *testing.T) {
	obj, _ := bind(t)
	s1, ok := obj.Signature("divmod")
	if !ok {
		t.Fatal("divmod not found")
	}
	if len(s1.In) != 2 || s1.Op.Name != "divmod" {
		t.Fatalf("signature = %+v", s1)
	}
	s2, _ := obj.Signature("divmod")
	if s1 != s2 {
		t.Error("second lookup did not return the memoized signature")
	}
	if _, ok := obj.Signature("no_such_op"); ok {
		t.Error("unknown operation resolved")
	}
	// Misses are not memoized (the map stays bounded by the interface).
	if m := obj.sigs.Load(); m != nil {
		if _, leaked := (*m)["no_such_op"]; leaked {
			t.Error("negative lookup was memoized")
		}
	}
}

// TestSignatureLookupAllocs is the satellite regression gate: once an
// operation's signature is memoized, resolving it again must not touch
// the heap — the pre-memoization path re-ran LookupOperation (a full
// inheritance walk plus a fresh operations slice) on every call.
func TestSignatureLookupAllocs(t *testing.T) {
	obj, _ := bind(t)
	for _, op := range []string{"add", "divmod", "_get_call_count"} {
		if _, ok := obj.Signature(op); !ok {
			t.Fatalf("%s not found", op)
		}
	}
	allocs := testing.AllocsPerRun(200, func() {
		for _, op := range []string{"add", "divmod", "_get_call_count"} {
			if _, ok := obj.Signature(op); !ok {
				t.Fatal("memoized signature vanished")
			}
		}
	})
	if allocs != 0 {
		t.Errorf("memoized Signature lookups allocate %.1f per run, want 0", allocs)
	}
}

func TestSignatureConcurrentPublish(t *testing.T) {
	obj, _ := bind(t)
	ops := []string{"add", "divmod", "scale", "describe", "_get_label", "_set_label", "_get_call_count", "reset"}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				op := ops[(g+i)%len(ops)]
				if _, ok := obj.Signature(op); !ok {
					t.Errorf("%s not found", op)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if m := obj.sigs.Load(); m == nil || len(*m) != len(ops) {
		t.Fatalf("snapshot has %d entries, want %d", len(*obj.sigs.Load()), len(ops))
	}
}

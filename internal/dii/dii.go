// Package dii implements CORBA's Dynamic Invocation Interface for
// CORBA-LC: calling any operation on any object knowing only its parsed
// IDL. It joins the interface repository (internal/idl) to the ORB's
// untyped invocation path, adding the typing a stub compiler would have
// generated — signature lookup, parameter direction handling, result and
// out-parameter decoding, and raises-clause-aware exception mapping.
//
// Tools (corbalc-admin, visual builders) use DII to drive component
// ports generically; the paper's §2.1.2 choice of "CORBA 2 standard,
// mature IDL" makes this possible without code generation.
package dii

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"corbalc/internal/cdr"
	"corbalc/internal/idl"
	"corbalc/internal/orb"
)

// Errors returned by DII calls.
var (
	ErrNoOperation = errors.New("dii: interface has no such operation")
	ErrArity       = errors.New("dii: wrong number of in-parameters")
)

// Exception is a typed user exception: the raises-clause entry that
// matched, with its members decoded per its IDL definition.
type Exception struct {
	Type    *idl.Type
	Members map[string]any
}

func (e *Exception) Error() string {
	return fmt.Sprintf("dii: user exception %s %v", e.Type.ScopedName(), e.Members)
}

// Object is a typed view of a CORBA object: an object reference plus the
// IDL interface it implements.
type Object struct {
	Ref   *orb.ObjectRef
	Iface *idl.Type

	// sigs memoizes resolved operation signatures behind an atomic
	// snapshot pointer: idl.Type.LookupOperation re-walks the whole
	// inheritance graph and rebuilds the operation list on every call,
	// which costs several allocations on the request hot path. Readers
	// load the snapshot lock-free; a miss clones the map, adds the
	// resolved signature and publishes the copy under sigMu (the
	// copy-on-write registry idiom from internal/orb). Only operations
	// that exist are memoized, so the map is bounded by the interface's
	// operation count.
	sigs  atomic.Pointer[map[string]*Signature]
	sigMu sync.Mutex
}

// Signature is one resolved operation signature: the operation and its
// in/inout parameters in declaration order (the arguments a caller must
// supply). Both are shared snapshots — callers must not mutate them.
type Signature struct {
	Op *idl.Operation
	In []idl.Param
}

// Signature resolves (and memoizes) an operation's signature by name,
// including inherited operations and implied attribute accessors.
func (o *Object) Signature(opName string) (*Signature, bool) {
	if m := o.sigs.Load(); m != nil {
		if s, ok := (*m)[opName]; ok {
			return s, true
		}
	}
	op, ok := o.Iface.LookupOperation(opName)
	if !ok {
		return nil, false
	}
	sig := &Signature{Op: op}
	for _, p := range op.Params {
		if p.Dir == idl.DirIn || p.Dir == idl.DirInOut {
			sig.In = append(sig.In, p)
		}
	}
	o.sigMu.Lock()
	defer o.sigMu.Unlock()
	var cur map[string]*Signature
	if m := o.sigs.Load(); m != nil {
		if s, ok := (*m)[opName]; ok {
			// Lost the publish race; keep the first snapshot's entry.
			return s, true
		}
		cur = *m
	}
	next := make(map[string]*Signature, len(cur)+1)
	for k, v := range cur {
		next[k] = v
	}
	next[opName] = sig
	o.sigs.Store(&next)
	return sig, true
}

// Bind builds a typed object from a reference and an interface type.
func Bind(ref *orb.ObjectRef, iface *idl.Type) (*Object, error) {
	iface = iface.Resolve()
	if iface.Kind != idl.KindInterface {
		return nil, fmt.Errorf("dii: %s is not an interface", iface)
	}
	return &Object{Ref: ref, Iface: iface}, nil
}

// BindByID builds a typed object looking the interface up in a
// repository by its repository ID (typically the reference's TypeID).
func BindByID(repo *idl.Repository, ref *orb.ObjectRef, repoID string) (*Object, error) {
	t, ok := repo.LookupByRepoID(repoID)
	if !ok {
		return nil, fmt.Errorf("dii: repository has no interface %s", repoID)
	}
	return Bind(ref, t)
}

// Result carries a call's outputs: the return value and the out/inout
// parameters by name.
type Result struct {
	Return any
	Out    map[string]any
}

// CallContext invokes an operation under ctx with the given in/inout
// arguments (in declaration order, skipping pure out parameters).
// Outputs are decoded per the signature. Attribute accessors use their
// implied names ("_get_x"/"_set_x").
func (o *Object) CallContext(ctx context.Context, opName string, args ...any) (*Result, error) {
	sig, ok := o.Signature(opName)
	if !ok {
		return nil, fmt.Errorf("%w: %s.%s", ErrNoOperation, o.Iface.ScopedName(), opName)
	}
	op, inParams := sig.Op, sig.In
	if len(args) != len(inParams) {
		return nil, fmt.Errorf("%w: %s takes %d, got %d", ErrArity, opName, len(inParams), len(args))
	}

	// Encode in/inout parameters in declaration order.
	var encodeErr error
	marshal := func(e *cdr.Encoder) {
		for i, p := range inParams {
			if err := idl.Encode(e, p.Type, args[i]); err != nil {
				encodeErr = fmt.Errorf("dii: parameter %s: %w", p.Name, err)
				return
			}
		}
	}

	res := &Result{Out: make(map[string]any)}
	unmarshal := func(d *cdr.Decoder) error {
		// GIOP reply body order: return value, then out/inout params in
		// declaration order.
		if op.Result != nil && op.Result.Resolve().Kind != idl.KindVoid {
			v, err := idl.Decode(d, op.Result)
			if err != nil {
				return fmt.Errorf("return value: %w", err)
			}
			res.Return = v
		}
		for _, p := range op.Params {
			if p.Dir == idl.DirOut || p.Dir == idl.DirInOut {
				v, err := idl.Decode(d, p.Type)
				if err != nil {
					return fmt.Errorf("out parameter %s: %w", p.Name, err)
				}
				res.Out[p.Name] = v
			}
		}
		return nil
	}

	var err error
	if op.Oneway {
		err = o.Ref.InvokeOnewayContext(ctx, opName, marshal)
	} else {
		err = o.Ref.InvokeContext(ctx, opName, marshal, unmarshal)
	}
	if encodeErr != nil {
		return nil, encodeErr
	}
	if err != nil {
		return nil, o.mapException(op, err)
	}
	return res, nil
}

// mapException decodes a user exception against the operation's raises
// clause, so callers get typed members instead of a raw CDR stream.
func (o *Object) mapException(op *idl.Operation, err error) error {
	var ue *orb.UserException
	if !errors.As(err, &ue) || ue.Body == nil {
		return err
	}
	for _, exType := range op.Raises {
		exType = exType.Resolve()
		if exType.RepoID() != ue.ID {
			continue
		}
		members, derr := idl.Decode(ue.Body, exType)
		if derr != nil {
			return fmt.Errorf("dii: decoding exception %s: %v (original: %w)", ue.ID, derr, err)
		}
		m, _ := members.(map[string]any)
		return &Exception{Type: exType, Members: m}
	}
	return err
}

// Call is the context-less form of CallContext, for the public API and
// tools; production code inside internal/ should pass a real context.
func (o *Object) Call(opName string, args ...any) (*Result, error) {
	return o.CallContext(context.Background(), opName, args...)
}

// GetContext reads an attribute under ctx.
func (o *Object) GetContext(ctx context.Context, attr string) (any, error) {
	res, err := o.CallContext(ctx, "_get_"+attr)
	if err != nil {
		return nil, err
	}
	return res.Return, nil
}

// Get is the context-less form of GetContext.
func (o *Object) Get(attr string) (any, error) {
	return o.GetContext(context.Background(), attr)
}

// SetContext writes an attribute under ctx.
func (o *Object) SetContext(ctx context.Context, attr string, value any) error {
	_, err := o.CallContext(ctx, "_set_"+attr, value)
	return err
}

// Set is the context-less form of SetContext.
func (o *Object) Set(attr string, value any) error {
	return o.SetContext(context.Background(), attr, value)
}

//go:build !race

// Package race reports whether the binary was built with the race
// detector, mirroring the standard library's internal/race.
//
// The alloc-budget tests need it: under -race, sync.Pool deliberately
// drops a random quarter of Put items (to widen the interleavings the
// detector can observe), so steady-state allocation counts over pooled
// code are not stable and the strict AllocsPerRun assertions must be
// skipped. The budgets remain enforced by the plain-test run and by
// the corbalc-benchgate CI gate.
package race

// Enabled reports whether the race detector is active.
const Enabled = false

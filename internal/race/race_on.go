//go:build race

package race

// Enabled reports whether the race detector is active.
const Enabled = true

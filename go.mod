module corbalc

go 1.22

module corbalc

go 1.23

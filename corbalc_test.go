package corbalc_test

import (
	"context"
	"testing"
	"time"

	"corbalc"
	"corbalc/internal/cdr"
	"corbalc/internal/component"
	"corbalc/internal/node"
	"corbalc/internal/orb"
	"corbalc/internal/simnet"
	"corbalc/internal/xmldesc"
)

type greeterInstance struct{ component.Base }

func (g *greeterInstance) InvokePort(port, op string, args *cdr.Decoder, reply *cdr.Encoder) error {
	if port == "greet" && op == "hello" {
		name, err := args.ReadString()
		if err != nil {
			return err
		}
		reply.WriteString("hello " + name + " from " + g.Ctx().NodeName())
		return nil
	}
	return orb.BadOperation()
}

func greeterSetup() (*component.Registry, *component.Spec) {
	reg := component.NewRegistry()
	reg.Register("facade/greeter.New", func() component.Instance { return &greeterInstance{} })
	spec := &component.Spec{Name: "greeter", Version: "1.0.0", Entrypoint: "facade/greeter.New"}
	spec.Provide("greet", "IDL:facade/Greeter:1.0")
	return reg, spec
}

func hello(t *testing.T, p *corbalc.Peer, who string) string {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		ref, err := p.Engine.Resolve(context.Background(), xmldesc.Port{
			Kind: xmldesc.PortUses, Name: "g", RepoID: "IDL:facade/Greeter:1.0",
		})
		if err == nil {
			var out string
			err = p.Node.ORB().NewRef(ref).Invoke("hello",
				func(e *cdr.Encoder) { e.WriteString(who) },
				func(d *cdr.Decoder) error {
					var e error
					out, e = d.ReadString()
					return e
				})
			if err == nil {
				return out
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("hello never resolved: %v", err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestClusterResolveAcrossVirtualNetwork(t *testing.T) {
	reg, spec := greeterSetup()
	c, err := corbalc.NewCluster(4, "vn%d", simnet.Link{}, corbalc.Options{
		Impls: reg, UpdateInterval: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.WaitConverged(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	comp, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Peers[3].Node.InstallComponent(comp); err != nil {
		t.Fatal(err)
	}
	got := hello(t, c.Peers[0], "cluster")
	if got != "hello cluster from vn3" {
		t.Fatalf("got %q", got)
	}
}

func TestTwoPeersOverRealTCP(t *testing.T) {
	reg, spec := greeterSetup()
	a := corbalc.NewPeer("alpha", corbalc.Options{Impls: reg, UpdateInterval: 20 * time.Millisecond})
	b := corbalc.NewPeer("beta", corbalc.Options{Impls: reg, UpdateInterval: 20 * time.Millisecond})
	defer a.Close()
	defer b.Close()

	srvA, err := a.ServeIIOP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srvA.Close()
	srvB, err := b.ServeIIOP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srvB.Close()

	a.Bootstrap()
	// Join through the stringified contact IOR, exactly as a separate
	// process would.
	contact, err := b.Node.ORB().ResolveStr(a.Contact().String())
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Join(contact.IOR()); err != nil {
		t.Fatal(err)
	}

	comp, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Node.InstallComponent(comp); err != nil {
		t.Fatal(err)
	}
	got := hello(t, b, "tcp")
	if got != "hello tcp from alpha" {
		t.Fatalf("got %q", got)
	}
}

// TestIIOPOptionsThreadThroughFacade proves the concurrency knobs in
// Options.IIOP reach the listening server and still carry real calls.
func TestIIOPOptionsThreadThroughFacade(t *testing.T) {
	reg, spec := greeterSetup()
	opts := corbalc.Options{
		Impls:          reg,
		UpdateInterval: 20 * time.Millisecond,
		IIOP: corbalc.IIOPOptions{
			PoolSize:       2,
			CallTimeout:    5 * time.Second,
			MaxDispatch:    4,
			DispatchQueue:  64,
			CoalesceWindow: -1,
		},
	}
	a := corbalc.NewPeer("alpha", opts)
	b := corbalc.NewPeer("beta", opts)
	defer a.Close()
	defer b.Close()

	srvA, err := a.ServeIIOP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srvA.Close()
	if srvA.MaxDispatch != 4 || srvA.DispatchQueue != 64 || srvA.CoalesceWindow != -1 {
		t.Fatalf("server knobs not applied: %+v", srvA)
	}
	srvB, err := b.ServeIIOP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srvB.Close()

	a.Bootstrap()
	contact, err := b.Node.ORB().ResolveStr(a.Contact().String())
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Join(contact.IOR()); err != nil {
		t.Fatal(err)
	}
	comp, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Node.InstallComponent(comp); err != nil {
		t.Fatal(err)
	}
	if got := hello(t, b, "tuned"); got != "hello tuned from alpha" {
		t.Fatalf("got %q", got)
	}
}

func TestPeerLeaveShrinksDirectory(t *testing.T) {
	reg, _ := greeterSetup()
	c, err := corbalc.NewCluster(3, "lv%d", simnet.Link{}, corbalc.Options{
		Impls: reg, UpdateInterval: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.WaitConverged(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	c.Peers[2].Leave()
	deadline := time.Now().Add(5 * time.Second)
	for c.Peers[0].Agent.Directory().Len() != 2 {
		if time.Now().After(deadline) {
			t.Fatal("leave not observed")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestFigure1NodeWiring verifies, executably, the structure of the
// paper's Fig. 1: a node exposes the four external services, the
// Component Registry reflects the internal Component Repository
// (populate -> visible), the Resource Manager reflects the hardware, and
// instances/assemblies are reflected too.
func TestFigure1NodeWiring(t *testing.T) {
	reg, spec := greeterSetup()
	p := corbalc.NewPeer("fig1", corbalc.Options{Impls: reg, Profile: node.ServerProfile()})
	defer p.Close()
	p.Bootstrap()

	o := p.Node.ORB()
	// External view: the four Fig. 1 interfaces exist and respond.
	for _, svc := range []struct{ ref, op string }{
		{p.Node.ResourcesIOR().String(), "report"},
		{p.Node.RegistryIOR().String(), "list_components"},
	} {
		ref, err := o.ResolveStr(svc.ref)
		if err != nil {
			t.Fatal(err)
		}
		if err := ref.Invoke(svc.op, nil, func(d *cdr.Decoder) error { return nil }); err != nil {
			t.Fatalf("%s: %v", svc.op, err)
		}
	}
	cohRef := o.NewRef(p.Contact())
	var epoch uint64
	if err := cohRef.Invoke("ping", nil, func(d *cdr.Decoder) error {
		var e error
		epoch, e = d.ReadULongLong()
		return e
	}); err != nil || epoch == 0 {
		t.Fatalf("network cohesion ping: epoch=%d err=%v", epoch, err)
	}

	// "populates": installing through the acceptor makes the component
	// instantly visible through the registry (reflection).
	comp, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	acc := o.NewRef(p.Node.AcceptorIOR())
	if err := acc.Invoke("install",
		func(e *cdr.Encoder) { e.WriteOctetSeq(comp.Package().Bytes()) },
		func(d *cdr.Decoder) error { _, e := d.ReadString(); return e }); err != nil {
		t.Fatal(err)
	}
	regRef := o.NewRef(p.Node.RegistryIOR())
	var names []string
	if err := regRef.Invoke("list_components", nil, func(d *cdr.Decoder) error {
		var e error
		names, e = d.ReadStringSeq()
		return e
	}); err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "greeter-1.0.0" {
		t.Fatalf("registry reflects %v", names)
	}

	// "reflects": the resource manager reports the server profile and
	// reservation changes show in the dynamic data.
	rm := o.NewRef(p.Node.ResourcesIOR())
	readReport := func() *node.Report {
		var r *node.Report
		if err := rm.Invoke("report", nil, func(d *cdr.Decoder) error {
			var e error
			r, e = node.UnmarshalReport(d)
			return e
		}); err != nil {
			t.Fatal(err)
		}
		return r
	}
	before := readReport()
	if before.Capability != node.CapServer || before.CPUCores != 16 {
		t.Fatalf("static info = %+v", before)
	}
	if _, err := p.Node.Instantiate(context.Background(), comp.ID(), "g1"); err != nil {
		t.Fatal(err)
	}
	after := readReport()
	if after.Instances != before.Instances+1 || after.Digest <= before.Digest {
		t.Fatalf("dynamic reflection: before=%+v after=%+v", before, after)
	}
}

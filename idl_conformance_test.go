package corbalc_test

import (
	"context"
	"errors"
	"testing"

	"corbalc"
	"corbalc/internal/cdr"
	"corbalc/internal/component"
	"corbalc/internal/idl"
	"corbalc/internal/ior"
	"corbalc/internal/orb"
)

// TestServiceIDLConformance parses idl/corbalc.idl — the published
// contracts of every CORBA-LC service — and checks each declared
// operation against the live servants: invoking a declared operation
// (with empty arguments) must never produce CORBA::BAD_OPERATION, which
// is what the servants return for names they do not implement. This
// keeps the IDL file and the Go implementations in lock-step.
func TestServiceIDLConformance(t *testing.T) {
	repo := idl.NewRepository()
	if err := repo.ParseFile("idl/corbalc.idl"); err != nil {
		t.Fatal(err)
	}

	// A live peer with one component instance gives us real servants
	// for every interface.
	reg := component.NewRegistry()
	reg.Register("conf/x.New", func() component.Instance { return &component.Base{} })
	p := corbalc.NewPeer("conformance", corbalc.Options{Impls: reg})
	defer p.Close()
	p.Bootstrap()

	spec := &component.Spec{Name: "confcomp", Version: "1.0.0", Entrypoint: "conf/x.New"}
	spec.Provide("svc", "IDL:conf/Svc:1.0")
	comp, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Node.InstallComponent(comp); err != nil {
		t.Fatal(err)
	}
	mi, err := p.Node.Instantiate(context.Background(), comp.ID(), "i1")
	if err != nil {
		t.Fatal(err)
	}
	ct, err := p.Node.ContainerFor(comp.ID())
	if err != nil {
		t.Fatal(err)
	}

	o := p.Node.ORB()
	targets := map[string]*ior.IOR{
		"corbalc::NetworkCohesion":   p.Contact(),
		"corbalc::ComponentRegistry": p.Node.RegistryIOR(),
		"corbalc::ComponentAcceptor": p.Node.AcceptorIOR(),
		"corbalc::ResourceManager":   p.Node.ResourcesIOR(),
		"corbalc::EventService":      p.Node.EventsIOR(),
		"corbalc::ComponentFactory":  ct.FactoryIOR(),
		"corbalc::ComponentInstance": mi.EquivalentIOR(),
	}

	for scoped, target := range targets {
		iface, ok := repo.LookupType(scoped)
		if !ok {
			t.Errorf("idl/corbalc.idl does not declare %s", scoped)
			continue
		}
		ref := o.NewRef(target)
		// The IOR type IDs must match the IDL repository IDs.
		if target.TypeID != iface.RepoID() {
			t.Errorf("%s: servant advertises %q, IDL says %q", scoped, target.TypeID, iface.RepoID())
		}
		for _, op := range iface.AllOperations() {
			err := ref.Invoke(op.Name, nil, nil)
			var se *orb.SystemException
			if errors.As(err, &se) && se.Name == "BAD_OPERATION" {
				t.Errorf("%s: declared operation %q not recognised by the servant", scoped, op.Name)
			}
		}
	}
}

// TestServiceIDLTypesUsable double-checks the declared aggregate aliases
// survive the dynamic marshaller (i.e. the IDL is not just parseable but
// usable for DII against these services).
func TestServiceIDLTypesUsable(t *testing.T) {
	repo := idl.NewRepository()
	if err := repo.ParseFile("idl/corbalc.idl"); err != nil {
		t.Fatal(err)
	}
	blob, ok := repo.LookupType("corbalc::Blob")
	if !ok {
		t.Fatal("Blob missing")
	}
	e := cdr.NewEncoder(cdr.LittleEndian)
	if err := idl.Encode(e, blob, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	v, err := idl.Decode(cdr.NewDecoder(e.Bytes(), cdr.LittleEndian), blob)
	if err != nil || len(v.([]byte)) != 3 {
		t.Fatalf("blob round trip: %v, %v", v, err)
	}
	// Every declared exception carries a repository ID matching the ones
	// the servants raise.
	for _, want := range []string{
		"IDL:corbalc/ComponentRegistry/NoSuchComponent:1.0",
		"IDL:corbalc/ComponentAcceptor/Rejected:1.0",
		"IDL:corbalc/ComponentFactory/CreateFailed:1.0",
		"IDL:corbalc/ComponentInstance/NoSuchPort:1.0",
		"IDL:corbalc/EventService/NoSuchBridge:1.0",
		"IDL:corbalc/NetworkCohesion/Refused:1.0",
	} {
		if _, ok := repo.LookupByRepoID(want); !ok {
			t.Errorf("IDL does not declare exception %s", want)
		}
	}
}

// corbalc-admin is the management client: it talks to a live CORBA-LC
// network over IIOP through any member's contact IOR, without joining.
//
// Usage:
//
//	corbalc-admin -contact IOR:...|@contact.ior <command> [args]
//
// Commands:
//
//	dir                         show the membership directory
//	report <node>               one node's resource report
//	components <node>           list a node's installed components
//	query <port-repoid> [ver]   network-wide component query via the root MRM
//	install <node> <pkg.zip>    install a package on a node
//	instantiate <node> <component-id> <instance>
//	ports <node> <component-id> <instance>   show an instance's port states
//	events <node>               event-fabric counters (published/delivered/dropped)
//	cohesion <node>             gossip-plane counters (deltas/anti-entropy/batches)
//	deploy <assembly.xml> [listen-addr]
//	    join as an ephemeral peer and deploy an application assembly at
//	    run time (instances land on the currently best nodes)
//	call <node> <component-id> <instance> <port> <op> [args...]
//	    invoke any operation through the Dynamic Invocation Interface:
//	    the component's own IDL (shipped in its package) provides the
//	    signature; scalar arguments are parsed per parameter type
//	gateway <addr>              per-route counters of a corbalc-gateway
//	    (no -contact needed; addr is the gateway's HTTP address)
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"strconv"

	"corbalc"
	"corbalc/internal/assembly"
	"corbalc/internal/cdr"
	"corbalc/internal/cohesion"
	"corbalc/internal/component"
	"corbalc/internal/dii"
	"corbalc/internal/gateway"
	"corbalc/internal/idl"
	"corbalc/internal/iiop"
	"corbalc/internal/ior"
	"corbalc/internal/node"
	"corbalc/internal/orb"
)

func main() {
	contact := flag.String("contact", "", "contact IOR (IOR:... or @file)")
	flag.Parse()
	// The gateway subcommand inspects an HTTP web gateway
	// (corbalc-gateway), not a CORBA-LC network: no contact IOR needed.
	if flag.NArg() > 0 && flag.Arg(0) == "gateway" {
		gatewayCmd(flag.Args()[1:])
		return
	}
	if *contact == "" || flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: corbalc-admin -contact IOR:...|@file <dir|report|components|query|install|instantiate|ports> ...")
		os.Exit(2)
	}

	o := orb.NewORB()
	o.RegisterTransport(&iiop.Transport{CallTimeout: 10 * time.Second})
	defer o.Shutdown()

	ref, err := o.ResolveStr(resolveContact(*contact))
	if err != nil {
		fatal(err)
	}
	dir := fetchDirectory(o, ref)

	args := flag.Args()
	switch args[0] {
	case "dir":
		fmt.Printf("epoch %d, %d node(s)\n", dir.Epoch, dir.Len())
		for g, members := range dir.Groups {
			if len(members) == 0 {
				continue
			}
			fmt.Printf("group %d:", g)
			for _, m := range members {
				fmt.Printf(" %s(%s)", m, dir.Nodes[m].Capability)
			}
			fmt.Println()
		}
	case "report":
		nd := nodeArg(dir, args, 1)
		r := fetchReport(o, nd)
		fmt.Printf("node %s (%s): os=%s/%s cpu=%.2f/%.2f mem=%d/%dMB bw=%.0fMbps instances=%d digest=%d\n",
			r.Node, r.Capability, r.OS, r.Arch, r.CPUUsed, r.CPUCores,
			r.MemoryUsedMB, r.MemoryMB, r.BandwidthMbps, r.Instances, r.Digest)
	case "components":
		nd := nodeArg(dir, args, 1)
		var names []string
		must(o.NewRef(nd.Registry).Invoke("list_components", nil, func(d *cdr.Decoder) error {
			var e error
			names, e = d.ReadStringSeq()
			return e
		}))
		for _, n := range names {
			fmt.Println(n)
		}
		if len(names) == 0 {
			fmt.Println("(none)")
		}
	case "query":
		if len(args) < 2 {
			fatal(fmt.Errorf("query needs a port repository ID"))
		}
		verReq := "*"
		if len(args) > 2 {
			verReq = args[2]
		}
		offers := rootQuery(o, dir, args[1], verReq)
		for _, of := range offers {
			fmt.Printf("%-24s node=%-12s port=%-10s load=%.2f movable=%v\n",
				of.ComponentID, of.Node, of.Port, of.NodeLoad, of.Movable)
		}
		if len(offers) == 0 {
			fmt.Println("(no offers)")
		}
	case "install":
		nd := nodeArg(dir, args, 1)
		if len(args) < 3 {
			fatal(fmt.Errorf("install needs <node> <pkg.zip>"))
		}
		data, err := os.ReadFile(args[2])
		if err != nil {
			fatal(err)
		}
		var id string
		must(o.NewRef(nd.Acceptor).Invoke("install",
			func(e *cdr.Encoder) { e.WriteOctetSeq(data) },
			func(d *cdr.Decoder) error { var e error; id, e = d.ReadString(); return e }))
		fmt.Println("installed", id, "on", nd.Name)
	case "instantiate":
		nd := nodeArg(dir, args, 1)
		if len(args) < 4 {
			fatal(fmt.Errorf("instantiate needs <node> <component-id> <instance>"))
		}
		var equiv *ior.IOR
		must(o.NewRef(nd.Acceptor).Invoke("instantiate",
			func(e *cdr.Encoder) { e.WriteString(args[2]); e.WriteString(args[3]) },
			func(d *cdr.Decoder) error { var e error; equiv, e = ior.Unmarshal(d); return e }))
		fmt.Printf("instance %s of %s running on %s\n", args[3], args[2], nd.Name)
		fmt.Println("equivalent IOR:", equiv.String())
	case "ports":
		nd := nodeArg(dir, args, 1)
		if len(args) < 4 {
			fatal(fmt.Errorf("ports needs <node> <component-id> <instance>"))
		}
		must(o.NewRef(nd.Registry).Invoke("instance_ports",
			func(e *cdr.Encoder) { e.WriteString(args[2]); e.WriteString(args[3]) },
			func(d *cdr.Decoder) error {
				n, err := d.ReadULong()
				if err != nil {
					return err
				}
				for i := uint32(0); i < n; i++ {
					name, err := d.ReadString()
					if err != nil {
						return err
					}
					kind, err := d.ReadString()
					if err != nil {
						return err
					}
					repoID, err := d.ReadString()
					if err != nil {
						return err
					}
					connected, err := d.ReadBool()
					if err != nil {
						return err
					}
					fmt.Printf("%-8s %-16s %-32s connected=%v\n", kind, name, repoID, connected)
				}
				return nil
			}))
	case "map":
		// The visual-builder view (§2.4.2: the reflection data is used
		// "by visual builder tools to offer to the user the palette of
		// available components, instances and connections among them"):
		// every node, its components, instances and port states.
		for _, name := range dir.Names() {
			nd := dir.Nodes[name]
			r := fetchReport(o, nd)
			fmt.Printf("%s (%s) load=%.2f\n", name, nd.Capability, r.LoadFraction())
			var comps []string
			_ = o.NewRef(nd.Registry).Invoke("list_components", nil, func(d *cdr.Decoder) error {
				var e error
				comps, e = d.ReadStringSeq()
				return e
			})
			for _, comp := range comps {
				fmt.Printf("  component %s\n", comp)
			}
			type instRow struct{ comp, inst string }
			var insts []instRow
			_ = o.NewRef(nd.Registry).Invoke("list_instances", nil, func(d *cdr.Decoder) error {
				n, err := d.ReadULong()
				if err != nil {
					return err
				}
				for i := uint32(0); i < n; i++ {
					comp, err := d.ReadString()
					if err != nil {
						return err
					}
					inst, err := d.ReadString()
					if err != nil {
						return err
					}
					insts = append(insts, instRow{comp, inst})
				}
				return nil
			})
			for _, ir := range insts {
				fmt.Printf("  instance  %s of %s\n", ir.inst, ir.comp)
				_ = o.NewRef(nd.Registry).Invoke("instance_ports",
					func(e *cdr.Encoder) { e.WriteString(ir.comp); e.WriteString(ir.inst) },
					func(d *cdr.Decoder) error {
						n, err := d.ReadULong()
						if err != nil {
							return err
						}
						for i := uint32(0); i < n; i++ {
							pname, err := d.ReadString()
							if err != nil {
								return err
							}
							kind, err := d.ReadString()
							if err != nil {
								return err
							}
							repoID, err := d.ReadString()
							if err != nil {
								return err
							}
							connected, err := d.ReadBool()
							if err != nil {
								return err
							}
							mark := " "
							if connected {
								mark = "*"
							}
							fmt.Printf("    %s %-8s %-14s %s\n", mark, kind, pname, repoID)
						}
						return nil
					})
			}
		}
	case "events":
		// events <node>: the node's event-fabric counters — one line per
		// channel plus a dropped total, so overflow policies are
		// observable from outside (DESIGN.md §12).
		nd := nodeArg(dir, args, 1)
		var evRef *ior.IOR
		must(o.NewRef(nd.Acceptor).Invoke("event_service", nil,
			func(d *cdr.Decoder) error { var e error; evRef, e = ior.Unmarshal(d); return e }))
		var total uint64
		var rows int
		must(o.NewRef(evRef).Invoke("events_stats", nil, func(d *cdr.Decoder) error {
			n, err := d.ReadULong()
			if err != nil {
				return err
			}
			for i := uint32(0); i < n; i++ {
				typeID, err := d.ReadString()
				if err != nil {
					return err
				}
				pub, err := d.ReadULongLong()
				if err != nil {
					return err
				}
				del, err := d.ReadULongLong()
				if err != nil {
					return err
				}
				drop, err := d.ReadULongLong()
				if err != nil {
					return err
				}
				subs, err := d.ReadULong()
				if err != nil {
					return err
				}
				total += drop
				rows++
				fmt.Printf("%-40s published=%-8d delivered=%-8d dropped=%-6d subscribers=%d\n",
					typeID, pub, del, drop, subs)
			}
			return nil
		}))
		if rows == 0 {
			fmt.Println("(no event channels)")
		} else {
			fmt.Printf("total dropped: %d\n", total)
		}
	case "cohesion":
		// cohesion <node>: the node's gossip-plane counters (DESIGN.md
		// §13) — how many deltas it has disseminated, received and
		// applied, the anti-entropy pull traffic, and the coalesced
		// gossip frames/bytes it has shipped.
		nd := nodeArg(dir, args, 1)
		var st *cohesion.Stats
		must(o.NewRef(nd.Cohesion).Invoke("cohesion_stats", nil,
			func(d *cdr.Decoder) error { var e error; st, e = cohesion.UnmarshalStats(d); return e }))
		fmt.Printf("directory: epoch=%d nodes=%d groups=%d vv-entries=%d\n",
			st.Epoch, st.Nodes, st.Groups, st.VVSize)
		fmt.Printf("deltas:    sent=%d recv=%d applied=%d\n",
			st.DeltasSent, st.DeltasRecv, st.DeltasApplied)
		fmt.Printf("anti-entropy: pulls=%d served=%d\n",
			st.AntiEntropyPulls, st.PullsServed)
		fmt.Printf("gossip:    batches=%d bytes=%d\n", st.GossipBatches, st.GossipBytes)
		fmt.Printf("updates:   sent=%d recv=%d bytes=%d\n",
			st.UpdatesSent, st.UpdatesRecv, st.UpdateBytes)
		fmt.Printf("queries:   sent=%d served=%d floods=%d\n",
			st.QueriesSent, st.QueriesServed, st.Floods)
	case "deploy":
		// deploy <assembly.xml> [listen-addr]: join the network as an
		// ephemeral peer, match the assembly against it at run time,
		// print the placements and leave (the application keeps
		// running).
		if len(args) < 2 {
			fatal(fmt.Errorf("deploy needs an assembly.xml path"))
		}
		listen := "127.0.0.1:0"
		if len(args) > 2 {
			listen = args[2]
		}
		deployAssembly(*contact, args[1], listen)
	case "call":
		if len(args) < 6 {
			fatal(fmt.Errorf("call needs <node> <component-id> <instance> <port> <op> [args...]"))
		}
		nd := nodeArg(dir, args, 1)
		callOp(o, nd, args[2], args[3], args[4], args[5], args[6:])
	default:
		fatal(fmt.Errorf("unknown command %q", args[0]))
	}
}

// deployAssembly runs the run-time matching of §2.4.4 from the command
// line: an ephemeral peer joins the network (so it can query the
// Distributed Registry and drive acceptors), deploys the assembly, and
// leaves. The deployed instances stay up on their nodes.
func deployAssembly(contact, path, listen string) {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	app, err := assembly.Parse(f)
	_ = f.Close()
	if err != nil {
		fatal(err)
	}

	peer := corbalc.NewPeer(fmt.Sprintf("admin-%d", os.Getpid()), corbalc.Options{
		UpdateInterval: 250 * time.Millisecond,
	})
	defer peer.Close()
	srv, err := peer.ServeIIOP(listen)
	if err != nil {
		fatal(err)
	}
	defer srv.Close()
	ref, err := peer.Node.ORB().ResolveStr(resolveContact(contact))
	if err != nil {
		fatal(err)
	}
	if err := peer.Join(ref.IOR()); err != nil {
		fatal(err)
	}
	defer peer.Leave()

	// Wait until every declared component is visible to the registry.
	deadline := time.Now().Add(15 * time.Second)
	for _, decl := range app.Instances {
		for {
			offers, err := peer.Agent.Query(context.Background(), node.ComponentKey(decl.Component), orDefaultStr(decl.Version, "*"))
			if err == nil && len(offers) > 0 {
				break
			}
			if time.Now().After(deadline) {
				fatal(fmt.Errorf("component %s (%s) not offered anywhere", decl.Component, decl.Version))
			}
			time.Sleep(100 * time.Millisecond)
		}
	}

	dep, err := assembly.Deploy(context.Background(), peer.Engine, peer.Node.ORB(), app)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("deployed %s:\n", app.Name)
	for inst, pl := range dep.Placements {
		fmt.Printf("  %-12s -> %-12s (%s)\n", inst, pl.Node, pl.ComponentID)
	}
}

func orDefaultStr(s, def string) string {
	if s == "" {
		return def
	}
	return s
}

// callOp drives an arbitrary operation through DII: it fetches the
// component package for its IDL, binds the port reference against the
// port's interface type, parses scalar arguments per the signature and
// prints the outputs.
func callOp(o *orb.ORB, nd *cohesion.NodeDesc, compID, instance, port, op string, rawArgs []string) {
	// The component's IDL travels inside its package.
	var pkgBytes []byte
	must(o.NewRef(nd.Registry).Invoke("get_package",
		func(e *cdr.Encoder) { e.WriteString(compID) },
		func(d *cdr.Decoder) error { var e error; pkgBytes, e = d.ReadOctetSeq(); return e }))
	comp, err := component.LoadBytes(pkgBytes)
	must(err)

	var portRef *ior.IOR
	must(o.NewRef(nd.Acceptor).Invoke("provide",
		func(e *cdr.Encoder) {
			e.WriteString(compID)
			e.WriteString(instance)
			e.WriteString(port)
		},
		func(d *cdr.Decoder) error { var e error; portRef, e = ior.Unmarshal(d); return e }))

	obj, err := dii.BindByID(comp.IDL(), o.NewRef(portRef), portRef.TypeID)
	must(err)
	opSig, ok := obj.Iface.LookupOperation(op)
	if !ok {
		fatal(fmt.Errorf("interface %s has no operation %q", obj.Iface.ScopedName(), op))
	}
	var in []idl.Param
	for _, p := range opSig.Params {
		if p.Dir == idl.DirIn || p.Dir == idl.DirInOut {
			in = append(in, p)
		}
	}
	if len(rawArgs) != len(in) {
		fatal(fmt.Errorf("%s takes %d argument(s), got %d", op, len(in), len(rawArgs)))
	}
	callArgs := make([]any, len(in))
	for i, p := range in {
		v, err := parseScalar(p.Type, rawArgs[i])
		if err != nil {
			fatal(fmt.Errorf("argument %s: %v", p.Name, err))
		}
		callArgs[i] = v
	}
	res, err := obj.Call(op, callArgs...)
	must(err)
	if res.Return != nil {
		fmt.Printf("return: %v\n", res.Return)
	}
	for name, v := range res.Out {
		fmt.Printf("out %s: %v\n", name, v)
	}
	if res.Return == nil && len(res.Out) == 0 {
		fmt.Println("ok")
	}
}

// parseScalar converts a command-line token per an IDL parameter type.
func parseScalar(t *idl.Type, s string) (any, error) {
	switch t.Resolve().Kind {
	case idl.KindBoolean:
		return strconv.ParseBool(s)
	case idl.KindOctet, idl.KindChar:
		if len(s) == 1 {
			return s[0], nil
		}
		v, err := strconv.ParseUint(s, 0, 8)
		return byte(v), err
	case idl.KindShort, idl.KindLong, idl.KindLongLong:
		v, err := strconv.ParseInt(s, 0, 64)
		return v, err
	case idl.KindUShort, idl.KindULong, idl.KindULongLong:
		v, err := strconv.ParseUint(s, 0, 64)
		return v, err
	case idl.KindFloat:
		v, err := strconv.ParseFloat(s, 32)
		return float32(v), err
	case idl.KindDouble:
		return strconv.ParseFloat(s, 64)
	case idl.KindString:
		return s, nil
	}
	return nil, fmt.Errorf("cannot parse %q as %s from the command line", s, t)
}

func fetchDirectory(o *orb.ORB, contact *orb.ObjectRef) *cohesion.Directory {
	var dir *cohesion.Directory
	must(contact.Invoke("get_directory", nil, func(d *cdr.Decoder) error {
		var e error
		dir, e = cohesion.UnmarshalDirectory(d)
		return e
	}))
	return dir
}

func fetchReport(o *orb.ORB, nd *cohesion.NodeDesc) *node.Report {
	var r *node.Report
	must(o.NewRef(nd.Resources).Invoke("report", nil, func(d *cdr.Decoder) error {
		var e error
		r, e = node.UnmarshalReport(d)
		return e
	}))
	return r
}

// rootQuery asks the root MRM (first root candidate that answers).
func rootQuery(o *orb.ORB, dir *cohesion.Directory, portID, verReq string) []*node.Offer {
	for _, cand := range dir.RootCandidates(4) {
		nd := dir.Nodes[cand]
		if nd == nil {
			continue
		}
		var offers []*node.Offer
		err := o.NewRef(nd.Cohesion).Invoke("root_query",
			func(e *cdr.Encoder) {
				e.WriteString(portID)
				e.WriteString(verReq)
				e.WriteLong(-1) // no group to skip
			},
			func(d *cdr.Decoder) error {
				var e error
				offers, e = node.UnmarshalOffers(d)
				return e
			})
		if err == nil {
			return offers
		}
	}
	fatal(fmt.Errorf("no root MRM answered the query"))
	return nil
}

func nodeArg(dir *cohesion.Directory, args []string, i int) *cohesion.NodeDesc {
	if len(args) <= i {
		fatal(fmt.Errorf("command needs a node name; known: %v", dir.Names()))
	}
	nd := dir.Nodes[args[i]]
	if nd == nil {
		fatal(fmt.Errorf("unknown node %q; known: %v", args[i], dir.Names()))
	}
	return nd
}

func resolveContact(s string) string {
	if strings.HasPrefix(s, "@") {
		raw, err := os.ReadFile(s[1:])
		if err != nil {
			fatal(err)
		}
		return strings.TrimSpace(string(raw))
	}
	return s
}

func must(err error) {
	if err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "corbalc-admin:", err)
	os.Exit(1)
}

// gatewayCmd renders a corbalc-gateway's /metrics as a per-route,
// per-operation table.
func gatewayCmd(args []string) {
	if len(args) != 1 {
		fatal(fmt.Errorf("gateway needs the gateway's HTTP address"))
	}
	addr := args[0]
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	hc := &http.Client{Timeout: 10 * time.Second}
	resp, err := hc.Get(addr + "/metrics")
	if err != nil {
		fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		fatal(fmt.Errorf("%s/metrics: HTTP %d", addr, resp.StatusCode))
	}
	var m gateway.Metrics
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		fatal(err)
	}
	limit := "unbounded"
	if m.MaxInFlight > 0 {
		limit = strconv.Itoa(m.MaxInFlight)
	}
	fmt.Printf("in-flight %d/%s, rejected %d, translation buffers %d\n",
		m.InFlight, limit, m.Rejected, m.TransBufs)
	routes := make([]string, 0, len(m.Routes))
	for name := range m.Routes {
		routes = append(routes, name)
	}
	sort.Strings(routes)
	for _, name := range routes {
		rt := m.Routes[name]
		fmt.Printf("route /obj/%s (%s) generation=%d\n", name, rt.Interface, rt.Generation)
		ops := make([]string, 0, len(rt.Ops))
		for op := range rt.Ops {
			ops = append(ops, op)
		}
		sort.Strings(ops)
		if len(ops) == 0 {
			fmt.Println("  (no requests yet)")
			continue
		}
		fmt.Printf("  %-24s %10s %8s %8s %8s %10s\n",
			"operation", "requests", "errors", "hits", "misses", "avg-us")
		for _, op := range ops {
			s := rt.Ops[op]
			fmt.Printf("  %-24s %10d %8d %8d %8d %10d\n",
				op, s.Requests, s.Errors, s.CacheHits, s.CacheMisses, s.AvgMicros)
		}
	}
}

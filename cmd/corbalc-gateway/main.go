// corbalc-gateway serves a runtime-configured HTTP/1.1+JSON front end
// for CORBA-LC objects: it parses IDL files into an interface
// repository, binds stringified object references to routes, and maps
//
//	POST /obj/{object}/{operation}
//
// onto DII invocations over IIOP — no generated stubs, no recompiles
// when interfaces change. See DESIGN.md §15.
//
// Usage:
//
//	corbalc-gateway -listen :8080 -idl calc.idl \
//	    -obj calc=demo::Calc=IOR:0001... \
//	    -obj store=demo::Store=@store.ior
//
// Each -obj is name=interface=ref, where interface is a scoped name
// ("demo::Calc") or repository ID, and ref is a stringified IOR
// (IOR:… or corbaloc:…) or @file holding one.
//
// Inspect a running gateway with:
//
//	corbalc-admin gateway localhost:8080
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"
	"time"

	"corbalc/internal/gateway"
	"corbalc/internal/idl"
	"corbalc/internal/iiop"
	"corbalc/internal/orb"
)

// stringList is a repeatable string flag.
type stringList []string

func (s *stringList) String() string { return strings.Join(*s, ",") }
func (s *stringList) Set(v string) error {
	*s = append(*s, v)
	return nil
}

func main() { os.Exit(run()) }

func run() int {
	var idlFiles, objs stringList
	listen := flag.String("listen", ":8080", "HTTP listen address")
	flag.Var(&idlFiles, "idl", "IDL file to load into the interface repository (repeatable)")
	flag.Var(&objs, "obj", "route as name=interface=ref; ref is IOR:…, corbaloc:… or @file (repeatable)")
	maxInFlight := flag.Int("max-inflight", 0, "bound on concurrently-handled requests; overflow gets 503 (0 = default, negative = unbounded)")
	cacheTTL := flag.Duration("cache-ttl", 0, "idempotent-response cache TTL (0 = default, negative = disable)")
	cacheShards := flag.Int("cache-shards", 0, "response-cache shard count (0 = default)")
	maxBody := flag.Int("max-body", 0, "request-body byte limit (0 = default)")
	callTimeout := flag.Duration("call-timeout", 0, "backend deadline when the client sends no X-Timeout-Ms (0 = default)")
	poolSize := flag.Int("pool-size", 0, "IIOP channel-pool stripes per backend (0 = default min(8, GOMAXPROCS))")
	flag.Parse()

	if len(idlFiles) == 0 || len(objs) == 0 {
		fmt.Fprintln(os.Stderr, "usage: corbalc-gateway -listen :8080 -idl file.idl -obj name=interface=ref [...]")
		return 2
	}

	repo := idl.NewRepository()
	for _, f := range idlFiles {
		if err := repo.ParseFile(f); err != nil {
			fmt.Fprintf(os.Stderr, "corbalc-gateway: %s: %v\n", f, err)
			return 1
		}
	}

	o := orb.NewORB()
	o.RegisterTransport(&iiop.Transport{PoolSize: *poolSize})
	defer o.Shutdown()

	gw, err := gateway.New(gateway.Options{
		ORB:         o,
		Repo:        repo,
		MaxInFlight: *maxInFlight,
		CacheTTL:    *cacheTTL,
		CacheShards: *cacheShards,
		MaxBody:     *maxBody,
		CallTimeout: *callTimeout,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "corbalc-gateway:", err)
		return 1
	}

	for _, spec := range objs {
		parts := strings.SplitN(spec, "=", 3)
		if len(parts) != 3 {
			fmt.Fprintf(os.Stderr, "corbalc-gateway: bad -obj %q (want name=interface=ref)\n", spec)
			return 2
		}
		name, iface, ref := parts[0], parts[1], parts[2]
		if strings.HasPrefix(ref, "@") {
			b, err := os.ReadFile(ref[1:])
			if err != nil {
				fmt.Fprintf(os.Stderr, "corbalc-gateway: %v\n", err)
				return 1
			}
			ref = strings.TrimSpace(string(b))
		}
		if err := gw.RegisterIOR(name, ref, iface); err != nil {
			fmt.Fprintln(os.Stderr, "corbalc-gateway:", err)
			return 1
		}
		fmt.Printf("route /obj/%s -> %s\n", name, iface)
	}

	srv := &http.Server{
		Addr:              *listen,
		Handler:           gw.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	fmt.Printf("listening on %s\n", *listen)
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		fmt.Fprintln(os.Stderr, "corbalc-gateway:", err)
		return 1
	}
	return 0
}

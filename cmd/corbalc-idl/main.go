// corbalc-idl parses OMG IDL files into the runtime interface repository
// and dumps what it finds — the standalone face of internal/idl.
//
// Usage:
//
//	corbalc-idl [-check] [-q] file.idl [more.idl ...]
//
// Without flags it prints every constructed type; -check only reports
// success/failure (exit status); -q limits output to interfaces.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"corbalc/internal/idl"
)

func main() {
	check := flag.Bool("check", false, "parse only; print nothing but errors")
	quiet := flag.Bool("q", false, "print interfaces only")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: corbalc-idl [-check] [-q] file.idl ...")
		os.Exit(2)
	}

	repo := idl.NewRepository()
	for _, path := range flag.Args() {
		if err := repo.ParseFile(path); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if *check {
		fmt.Printf("ok: %d types\n", len(repo.Types()))
		return
	}

	for _, t := range repo.Types() {
		switch t.Kind {
		case idl.KindInterface:
			printInterface(t)
		case idl.KindStruct, idl.KindException:
			if *quiet {
				continue
			}
			fmt.Printf("%s %s (%s)\n", t.Kind, t.ScopedName(), t.RepoID())
			for _, f := range t.Fields {
				fmt.Printf("    %s %s\n", f.Type, f.Name)
			}
		case idl.KindEnum:
			if *quiet {
				continue
			}
			fmt.Printf("enum %s { %s }\n", t.ScopedName(), strings.Join(t.Labels, ", "))
		case idl.KindAlias:
			if *quiet {
				continue
			}
			fmt.Printf("typedef %s %s\n", t.Elem, t.ScopedName())
		}
	}
}

func printInterface(t *idl.Type) {
	fmt.Printf("interface %s (%s)\n", t.ScopedName(), t.RepoID())
	for _, base := range t.Iface.Bases {
		fmt.Printf("    inherits %s\n", base.ScopedName())
	}
	for _, op := range t.AllOperations() {
		var params []string
		for _, p := range op.Params {
			params = append(params, fmt.Sprintf("%s %s %s", p.Dir, p.Type, p.Name))
		}
		mod := ""
		if op.Oneway {
			mod = "oneway "
		}
		raises := ""
		if len(op.Raises) > 0 {
			var names []string
			for _, ex := range op.Raises {
				names = append(names, ex.ScopedName())
			}
			raises = " raises (" + strings.Join(names, ", ") + ")"
		}
		fmt.Printf("    %s%s %s(%s)%s\n", mod, op.Result, op.Name, strings.Join(params, ", "), raises)
	}
}

// Command corbalc-lint is the multichecker driving the CORBA-LC
// invariant analyzers over this repository:
//
//	lockdiscipline     deferred-unlock hygiene; no blocking calls under a lock
//	cdralign           CDR primitives encode through internal/cdr helpers
//	errpropagation     no silently dropped error results
//	ctxtimeout         no network dials without deadline or context
//	poolreturn         pooled buffers/encoders/messages reach a release point
//	goroutinelifetime  every go statement in internal/ ties to a tracked lifetime
//	atomicfield        no mixing sync/atomic and plain access; no typed-atomic copies
//	lockorder          no cycles in the cross-package lock-acquisition graph
//
// Usage:
//
//	corbalc-lint [-vet] [-list] [packages...]
//
// Package patterns are directories, optionally /...-suffixed (default
// ./...). With -vet, a curated set of stock `go vet` analyzers runs in
// the same invocation, so CI needs a single gate. Exit status is 1 when
// any diagnostic is reported.
//
// Findings are suppressed line-by-line with:
//
//	//lint:ignore <analyzer> <reason>
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"strings"

	"corbalc/internal/analysis"
	"corbalc/internal/analysis/atomicfield"
	"corbalc/internal/analysis/cdralign"
	"corbalc/internal/analysis/ctxtimeout"
	"corbalc/internal/analysis/errpropagation"
	"corbalc/internal/analysis/goroutinelifetime"
	"corbalc/internal/analysis/lockdiscipline"
	"corbalc/internal/analysis/lockorder"
	"corbalc/internal/analysis/poolreturn"
)

var analyzers = []*analysis.Analyzer{
	lockdiscipline.Analyzer,
	cdralign.Analyzer,
	errpropagation.Analyzer,
	ctxtimeout.Analyzer,
	poolreturn.Analyzer,
	goroutinelifetime.Analyzer,
	atomicfield.Analyzer,
	lockorder.Analyzer,
}

// vetAnalyzers is the stock go vet subset run with -vet: the checks most
// relevant to a concurrent wire-protocol codebase.
var vetAnalyzers = []string{"copylocks", "atomic", "lostcancel", "unreachable", "printf"}

func main() {
	vet := flag.Bool("vet", false, "also run selected stock go vet analyzers (copylocks, atomic, lostcancel, unreachable, printf)")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: corbalc-lint [-vet] [-list] [packages...]\n\nAnalyzers:\n")
		for _, a := range analyzers {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-16s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := analysis.Load(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "corbalc-lint:", err)
		os.Exit(2)
	}
	failed := false
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			failed = true
			fmt.Fprintf(os.Stderr, "%v [typecheck]\n", terr)
		}
	}
	diags := analysis.Run(analyzers, pkgs)
	for _, d := range diags {
		failed = true
		var fset = pkgs[0].Fset
		fmt.Fprintf(os.Stderr, "%s: %s [%s]\n", fset.Position(d.Pos), d.Message, d.Analyzer)
	}
	if *vet && !runVet(patterns) {
		failed = true
	}
	if failed {
		os.Exit(1)
	}
}

// runVet shells out to the toolchain's vet with the curated analyzer
// set, reporting whether it passed.
func runVet(patterns []string) bool {
	args := []string{"vet"}
	for _, a := range vetAnalyzers {
		args = append(args, "-"+a)
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		if _, ok := err.(*exec.ExitError); !ok {
			fmt.Fprintf(os.Stderr, "corbalc-lint: go %s: %v\n", strings.Join(args, " "), err)
		}
		return false
	}
	return true
}

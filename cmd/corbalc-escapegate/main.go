// Command corbalc-escapegate holds the allocation line on the invocation
// hot path.
//
// ROADMAP item 5 drove Invoke to zero steady-state allocations; the gate
// keeps it there. It runs the compiler's escape analysis
// (go build -gcflags=-m) over the hot-path packages, normalizes the
// "escapes to heap" / "moved to heap" diagnostics into per-file message
// counts, and compares them against the checked-in baseline
// (ESCAPES.json). A value that starts escaping — a new message, or a
// higher count of an existing one — fails the build with the exact
// diagnostic, so the regression is caught at `make check`, not in a
// benchmark three PRs later.
//
// Line and column numbers are deliberately dropped from the baseline:
// unrelated edits move code around, and a gate that cries wolf on every
// reflow would be deleted within a month. The (file, message) pair plus
// count survives reformatting and still pins every distinct escape.
//
// Usage:
//
//	corbalc-escapegate [-baseline ESCAPES.json] [-update] [-summary file] [packages...]
//
// With -update the current escapes are written as the new baseline
// (required when intentionally adding an escape, or after an
// optimization removes one — the gate also fails on unrecorded
// improvements going stale silently is how baselines rot). With
// -summary, a markdown report is appended to the named file (CI passes
// $GITHUB_STEP_SUMMARY).
//
// Escape analysis results differ across compiler versions, so the
// baseline records the Go version it was generated with. On a mismatch
// the gate warns and exits 0 rather than failing developers who merely
// upgraded: regenerate with -update on the CI version to re-arm it.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"sort"
	"strings"
)

// defaultPackages are the invocation hot path: marshalling, framing,
// transport, the ORB core, and the buffer pool underneath them all.
var defaultPackages = []string{
	"./internal/cdr",
	"./internal/giop",
	"./internal/iiop",
	"./internal/orb",
	"./internal/bufpool",
}

// baseline is the checked-in escape inventory.
type baseline struct {
	// Go is the toolchain version the escapes were recorded with.
	Go string `json:"go"`
	// Packages are the patterns the gate ran over.
	Packages []string `json:"packages"`
	// Escapes maps file -> diagnostic message -> occurrence count.
	Escapes map[string]map[string]int `json:"escapes"`
}

func main() {
	var (
		baselinePath = flag.String("baseline", "ESCAPES.json", "baseline file to compare against (or write with -update)")
		update       = flag.Bool("update", false, "rewrite the baseline from the current escape analysis")
		summaryPath  = flag.String("summary", "", "append a markdown report to this file (e.g. $GITHUB_STEP_SUMMARY)")
	)
	flag.Parse()
	pkgs := flag.Args()
	if len(pkgs) == 0 {
		pkgs = defaultPackages
	}

	out, err := runEscapeAnalysis(pkgs)
	if err != nil {
		fmt.Fprintf(os.Stderr, "escapegate: build failed:\n%s", out)
		os.Exit(1)
	}
	current := parseEscapes(out)

	if *update {
		b := baseline{Go: runtime.Version(), Packages: pkgs, Escapes: current}
		data, err := json.MarshalIndent(b, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "escapegate: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*baselinePath, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "escapegate: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("escapegate: wrote %s (%d escapes across %d files, %s)\n",
			*baselinePath, total(current), len(current), runtime.Version())
		return
	}

	data, err := os.ReadFile(*baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "escapegate: no baseline: %v (run with -update to create one)\n", err)
		os.Exit(1)
	}
	var base baseline
	if err := json.Unmarshal(data, &base); err != nil {
		fmt.Fprintf(os.Stderr, "escapegate: bad baseline %s: %v\n", *baselinePath, err)
		os.Exit(1)
	}
	if base.Go != runtime.Version() {
		fmt.Fprintf(os.Stderr,
			"escapegate: baseline was recorded with %s but this toolchain is %s; escape analysis is version-specific, skipping the gate (regenerate with -update on the pinned version)\n",
			base.Go, runtime.Version())
		writeSummary(*summaryPath, summarize(nil, nil, current,
			fmt.Sprintf("skipped: baseline is for %s, toolchain is %s", base.Go, runtime.Version())))
		return
	}

	regressions, improvements := compare(base.Escapes, current)
	writeSummary(*summaryPath, summarize(regressions, improvements, current, ""))

	for _, line := range improvements {
		fmt.Printf("escapegate: improved: %s\n", line)
	}
	if len(improvements) > 0 && len(regressions) == 0 {
		fmt.Printf("escapegate: %d escape(s) eliminated — lock it in with `go run ./cmd/corbalc-escapegate -update`\n", len(improvements))
	}
	if len(regressions) > 0 {
		for _, line := range regressions {
			fmt.Fprintf(os.Stderr, "escapegate: NEW ESCAPE: %s\n", line)
		}
		fmt.Fprintf(os.Stderr,
			"escapegate: %d new heap escape(s) on the hot path; keep the value on the stack, or if the escape is intended, record it with `go run ./cmd/corbalc-escapegate -update` and justify it in the PR\n",
			len(regressions))
		os.Exit(1)
	}
	fmt.Printf("escapegate: ok (%d baselined escapes across %d files, %s)\n",
		total(current), len(current), base.Go)
}

// runEscapeAnalysis builds pkgs with -gcflags=-m and returns the
// combined diagnostic output. The compiler replays diagnostics from the
// build cache, so repeat runs are cheap and reproducible.
func runEscapeAnalysis(pkgs []string) (string, error) {
	args := append([]string{"build", "-gcflags=-m"}, pkgs...)
	cmd := exec.Command("go", args...)
	out, err := cmd.CombinedOutput()
	return string(out), err
}

var diagRE = regexp.MustCompile(`^([^\s:]+\.go):\d+:\d+: (.*)$`)

// parseEscapes extracts heap-escape diagnostics from -gcflags=-m output
// as file -> message -> count. Only module-relative files count: stdlib
// diagnostics arrive with absolute paths and <autogenerated> frames
// carry no actionable position. Inlining chatter and "does not escape"
// confirmations are dropped.
func parseEscapes(out string) map[string]map[string]int {
	escapes := map[string]map[string]int{}
	for _, line := range strings.Split(out, "\n") {
		m := diagRE.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		file, msg := m[1], m[2]
		if strings.HasPrefix(file, "/") || strings.HasPrefix(file, "<") {
			continue
		}
		if !strings.Contains(msg, "escapes to heap") && !strings.HasPrefix(msg, "moved to heap") {
			continue
		}
		if escapes[file] == nil {
			escapes[file] = map[string]int{}
		}
		escapes[file][msg]++
	}
	return escapes
}

// compare returns the regressions (messages new to a file, or counts
// above baseline) and improvements (messages gone, or counts below
// baseline), both sorted.
func compare(base, current map[string]map[string]int) (regressions, improvements []string) {
	for _, file := range sortedKeys(current) {
		for _, msg := range sortedKeys(current[file]) {
			cur, was := current[file][msg], base[file][msg]
			if cur > was {
				regressions = append(regressions, fmt.Sprintf("%s: %s (%d, baseline %d)", file, msg, cur, was))
			}
		}
	}
	for _, file := range sortedKeys(base) {
		for _, msg := range sortedKeys(base[file]) {
			was, cur := base[file][msg], current[file][msg]
			if cur < was {
				improvements = append(improvements, fmt.Sprintf("%s: %s (%d, baseline %d)", file, msg, cur, was))
			}
		}
	}
	return regressions, improvements
}

// summarize renders the markdown job summary.
func summarize(regressions, improvements []string, current map[string]map[string]int, skipped string) string {
	var b strings.Builder
	b.WriteString("### Escape gate\n\n")
	switch {
	case skipped != "":
		fmt.Fprintf(&b, "⚠️ %s\n", skipped)
	case len(regressions) > 0:
		fmt.Fprintf(&b, "❌ %d new heap escape(s) on the hot path:\n\n", len(regressions))
		for _, r := range regressions {
			fmt.Fprintf(&b, "- `%s`\n", r)
		}
	case len(improvements) > 0:
		fmt.Fprintf(&b, "✅ no new escapes; %d baselined escape(s) eliminated (update ESCAPES.json):\n\n", len(improvements))
		for _, i := range improvements {
			fmt.Fprintf(&b, "- `%s`\n", i)
		}
	default:
		fmt.Fprintf(&b, "✅ no new heap escapes (%d baselined across %d files)\n", total(current), len(current))
	}
	return b.String()
}

// writeSummary appends markdown to path, best-effort (the gate's verdict
// is its exit code; a read-only summary file must not mask it).
func writeSummary(path, md string) {
	if path == "" {
		return
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		fmt.Fprintf(os.Stderr, "escapegate: summary: %v\n", err)
		return
	}
	defer f.Close()
	if _, err := f.WriteString(md + "\n"); err != nil {
		fmt.Fprintf(os.Stderr, "escapegate: summary: %v\n", err)
	}
}

func total(escapes map[string]map[string]int) int {
	n := 0
	for _, msgs := range escapes {
		for _, c := range msgs {
			n += c
		}
	}
	return n
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

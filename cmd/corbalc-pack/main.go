// corbalc-pack builds, inspects, verifies and subsets CORBA-LC component
// packages (paper §2.3).
//
// Usage:
//
//	corbalc-pack keygen -o keyfile
//	    Write an Ed25519 key pair (hex): keyfile (private), keyfile.pub.
//
//	corbalc-pack build -softpkg softpkg.xml -type componenttype.xml \
//	    [-idl dir] [-bin dir] [-sign keyfile] -o component.zip
//	    Assemble a package from its descriptors, IDL sources and binary
//	    payloads. Binary file names must match the softpkg's
//	    <fileinarchive> entries (relative to -bin).
//
//	corbalc-pack inspect component.zip
//	    Print the package's identity, implementations, ports and files.
//
//	corbalc-pack verify -key keyfile.pub component.zip
//	    Check the manifest digests and signature.
//
//	corbalc-pack subset -impl id[,id...] [-sign keyfile] -o out.zip component.zip
//	    Extract a platform subset (e.g. for a PDA).
package main

import (
	"crypto/ed25519"
	"crypto/rand"
	"encoding/hex"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"corbalc/internal/cpkg"
	"corbalc/internal/xmldesc"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "keygen":
		keygen(os.Args[2:])
	case "build":
		build(os.Args[2:])
	case "inspect":
		inspect(os.Args[2:])
	case "verify":
		verify(os.Args[2:])
	case "subset":
		subset(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: corbalc-pack keygen|build|inspect|verify|subset ... (see -h of each)")
	os.Exit(2)
}

func die(err error) {
	fmt.Fprintln(os.Stderr, "corbalc-pack:", err)
	os.Exit(1)
}

func keygen(args []string) {
	fs := flag.NewFlagSet("keygen", flag.ExitOnError)
	out := fs.String("o", "corbalc.key", "output file (private key; .pub appended for public)")
	_ = fs.Parse(args)
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		die(err)
	}
	if err := os.WriteFile(*out, []byte(hex.EncodeToString(priv)+"\n"), 0o600); err != nil {
		die(err)
	}
	if err := os.WriteFile(*out+".pub", []byte(hex.EncodeToString(pub)+"\n"), 0o644); err != nil {
		die(err)
	}
	fmt.Printf("wrote %s and %s.pub\n", *out, *out)
}

func readKey(path string, want int) []byte {
	raw, err := os.ReadFile(path)
	if err != nil {
		die(err)
	}
	key, err := hex.DecodeString(strings.TrimSpace(string(raw)))
	if err != nil {
		die(fmt.Errorf("%s: %v", path, err))
	}
	if len(key) != want {
		die(fmt.Errorf("%s: key is %d bytes, want %d", path, len(key), want))
	}
	return key
}

func build(args []string) {
	fs := flag.NewFlagSet("build", flag.ExitOnError)
	spPath := fs.String("softpkg", "", "softpkg.xml path (required)")
	ctPath := fs.String("type", "", "componenttype.xml path (required)")
	idlDir := fs.String("idl", "", "directory of .idl files (archived under idl/)")
	binDir := fs.String("bin", "", "directory holding implementation binaries")
	signKey := fs.String("sign", "", "private key file to sign with")
	out := fs.String("o", "component.zip", "output package path")
	_ = fs.Parse(args)
	if *spPath == "" || *ctPath == "" {
		die(fmt.Errorf("build needs -softpkg and -type"))
	}

	spFile, err := os.Open(*spPath)
	if err != nil {
		die(err)
	}
	sp, err := xmldesc.ParseSoftPkg(spFile)
	_ = spFile.Close()
	if err != nil {
		die(err)
	}
	ctFile, err := os.Open(*ctPath)
	if err != nil {
		die(err)
	}
	ct, err := xmldesc.ParseComponentType(ctFile)
	_ = ctFile.Close()
	if err != nil {
		die(err)
	}

	b := &cpkg.Builder{SoftPkg: sp, ComponentType: ct, IDL: map[string]string{}, Binaries: map[string][]byte{}}
	if *idlDir != "" {
		entries, err := os.ReadDir(*idlDir)
		if err != nil {
			die(err)
		}
		for _, e := range entries {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".idl") {
				continue
			}
			src, err := os.ReadFile(filepath.Join(*idlDir, e.Name()))
			if err != nil {
				die(err)
			}
			b.IDL["idl/"+e.Name()] = string(src)
		}
	}
	for _, im := range sp.Implementations {
		name := im.Code.File.Name
		if *binDir == "" {
			die(fmt.Errorf("implementation %s needs binary %s but -bin not given", im.ID, name))
		}
		data, err := os.ReadFile(filepath.Join(*binDir, filepath.FromSlash(name)))
		if err != nil {
			die(err)
		}
		b.Binaries[name] = data
	}
	if *signKey != "" {
		b.Sign(ed25519.PrivateKey(readKey(*signKey, ed25519.PrivateKeySize)))
	}
	data, err := b.Build()
	if err != nil {
		die(err)
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		die(err)
	}
	fmt.Printf("built %s: %s-%s, %d bytes, %d implementation(s)\n",
		*out, sp.Name, sp.Version, len(data), len(sp.Implementations))
}

func open(path string) *cpkg.Package {
	data, err := os.ReadFile(path)
	if err != nil {
		die(err)
	}
	p, err := cpkg.Open(data)
	if err != nil {
		die(err)
	}
	return p
}

func inspect(args []string) {
	fs := flag.NewFlagSet("inspect", flag.ExitOnError)
	_ = fs.Parse(args)
	if fs.NArg() != 1 {
		die(fmt.Errorf("inspect needs one package path"))
	}
	p := open(fs.Arg(0))
	sp, ct := p.SoftPkg(), p.ComponentType()
	fmt.Printf("package   %s-%s (%d bytes)\n", sp.Name, sp.Version, p.Size())
	if sp.Title != "" {
		fmt.Printf("title     %s\n", sp.Title)
	}
	fmt.Printf("type      %s (%s)\n", ct.Name, ct.RepoID)
	fmt.Printf("mobility  %s   replication %s   splittable %v\n",
		orDefault(sp.Mobility, "movable"), orDefault(sp.Replication, "none"), sp.Aggregation.Splittable)
	for _, d := range sp.Dependencies {
		fmt.Printf("depends   %-10s %s %s\n", d.Type, d.Name, d.Version)
	}
	for _, im := range sp.Implementations {
		fmt.Printf("impl      %-16s %s/%s code=%s entry=%s\n",
			im.ID, orDefault(im.OS, "any"), orDefault(im.Processor, "any"),
			im.Code.File.Name, im.Code.EntryPoint)
	}
	for _, port := range ct.Ports {
		opt := ""
		if port.Optional {
			opt = " (optional)"
		}
		fmt.Printf("port      %-8s %-16s %s%s\n", port.Kind, port.Name, port.RepoID, opt)
	}
	fmt.Println("files:")
	for _, name := range p.Names() {
		data, _ := p.File(name)
		fmt.Printf("  %8d  %s\n", len(data), name)
	}
	if err := p.CheckManifest(); err != nil {
		fmt.Println("manifest:", err)
	} else {
		fmt.Println("manifest: ok")
	}
}

func orDefault(s, def string) string {
	if s == "" {
		return def
	}
	return s
}

func verify(args []string) {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	keyPath := fs.String("key", "", "public key file (required)")
	_ = fs.Parse(args)
	if *keyPath == "" || fs.NArg() != 1 {
		die(fmt.Errorf("verify needs -key and one package path"))
	}
	p := open(fs.Arg(0))
	pub := ed25519.PublicKey(readKey(*keyPath, ed25519.PublicKeySize))
	if err := p.Verify(pub); err != nil {
		die(err)
	}
	fmt.Println("signature ok")
}

func subset(args []string) {
	fs := flag.NewFlagSet("subset", flag.ExitOnError)
	impls := fs.String("impl", "", "comma-separated implementation ids to keep (required)")
	signKey := fs.String("sign", "", "private key file to re-sign the subset with")
	out := fs.String("o", "subset.zip", "output path")
	_ = fs.Parse(args)
	if *impls == "" || fs.NArg() != 1 {
		die(fmt.Errorf("subset needs -impl and one package path"))
	}
	p := open(fs.Arg(0))
	var signer ed25519.PrivateKey
	if *signKey != "" {
		signer = ed25519.PrivateKey(readKey(*signKey, ed25519.PrivateKeySize))
	}
	ids := strings.Split(*impls, ",")
	for i := range ids {
		ids[i] = strings.TrimSpace(ids[i])
	}
	sub, err := p.Subset(signer, ids...)
	if err != nil {
		die(err)
	}
	if err := os.WriteFile(*out, sub, 0o644); err != nil {
		die(err)
	}
	fmt.Printf("subset %s: %d -> %d bytes (%.0f%%)\n",
		*out, p.Size(), len(sub), 100*float64(len(sub))/float64(p.Size()))
}

// corbalc-node runs one CORBA-LC node as a daemon speaking real
// IIOP/TCP: it bootstraps a new logical network or joins an existing one
// and then serves the four node interfaces (Fig. 1) plus the cohesion
// protocol until interrupted.
//
// Usage:
//
//	corbalc-node -listen 0.0.0.0:2809 [-name host1] [-profile workstation]
//	             [-join IOR:...|@contact.ior] [-contact-file contact.ior]
//	             [pkg.zip ...]
//
// Trailing arguments are component packages installed at startup.
//
// The process registers a demo implementation entry point
// ("corbalc/echo.New"), so packages produced with that entry point can
// be installed and instantiated for smoke tests. Real deployments link
// their component implementations into the binary and register them in
// component.DefaultRegistry before starting the node.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"corbalc"
	"corbalc/internal/cdr"
	"corbalc/internal/component"
	"corbalc/internal/node"
	"corbalc/internal/orb"
)

// echoInstance is the built-in demo implementation: any provided port
// answers "echo" with its argument and "where" with the node name.
type echoInstance struct{ component.Base }

func (e *echoInstance) InvokePort(port, op string, args *cdr.Decoder, reply *cdr.Encoder) error {
	switch op {
	case "echo":
		s, err := args.ReadString()
		if err != nil {
			return err
		}
		reply.WriteString(s)
		return nil
	case "where":
		reply.WriteString(e.Ctx().NodeName())
		return nil
	}
	return orb.BadOperation()
}

func main() {
	name := flag.String("name", hostnameDefault(), "node name")
	listen := flag.String("listen", "127.0.0.1:0", "IIOP listen address")
	profile := flag.String("profile", "workstation", "hardware profile: server|workstation|pda")
	join := flag.String("join", "", "contact to join: IOR:... or @file containing one")
	contactFile := flag.String("contact-file", "", "write this node's contact IOR to a file")
	interval := flag.Duration("interval", 500*time.Millisecond, "soft-consistency update interval")
	flag.Parse()

	var prof node.Profile
	switch *profile {
	case "server":
		prof = node.ServerProfile()
	case "workstation":
		prof = node.WorkstationProfile()
	case "pda":
		prof = node.PDAProfile()
	default:
		fmt.Fprintln(os.Stderr, "unknown profile", *profile)
		os.Exit(2)
	}

	component.DefaultRegistry.Register("corbalc/echo.New",
		func() component.Instance { return &echoInstance{} })

	peer := corbalc.NewPeer(*name, corbalc.Options{
		Profile:        prof,
		UpdateInterval: *interval,
	})
	srv, err := peer.ServeIIOP(*listen)
	if err != nil {
		fatal(err)
	}
	defer srv.Close()
	host, port := peer.Node.ORB().Endpoint()
	fmt.Printf("node %q (%s) listening on %s:%d\n", *name, *profile, host, port)

	contact := peer.Contact().String()
	fmt.Println("contact:", contact)
	if *contactFile != "" {
		if err := os.WriteFile(*contactFile, []byte(contact+"\n"), 0o644); err != nil {
			fatal(err)
		}
	}

	if *join == "" {
		peer.Bootstrap()
		fmt.Println("bootstrapped a new logical network")
	} else {
		ref, err := peer.Node.ORB().ResolveStr(resolveContact(*join))
		if err != nil {
			fatal(err)
		}
		if err := peer.Join(ref.IOR()); err != nil {
			fatal(err)
		}
		fmt.Println("joined the network")
	}

	for _, pkg := range flag.Args() {
		data, err := os.ReadFile(pkg)
		if err != nil {
			fatal(err)
		}
		id, err := peer.Node.Install(data)
		if err != nil {
			fatal(fmt.Errorf("installing %s: %w", pkg, err))
		}
		fmt.Println("installed", id)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	status := time.NewTicker(10 * time.Second)
	defer status.Stop()
	for {
		select {
		case <-sig:
			fmt.Println("\nleaving the network...")
			peer.Leave()
			peer.Close()
			return
		case <-status.C:
			dir := peer.Agent.Directory()
			r := peer.Node.Report()
			fmt.Printf("[status] nodes=%d epoch=%d components=%d instances=%d load=%.2f\n",
				dir.Len(), dir.Epoch, peer.Node.Repo().Len(), r.Instances, r.LoadFraction())
		}
	}
}

func resolveContact(s string) string {
	if strings.HasPrefix(s, "@") {
		raw, err := os.ReadFile(s[1:])
		if err != nil {
			fatal(err)
		}
		return strings.TrimSpace(string(raw))
	}
	return s
}

func hostnameDefault() string {
	h, err := os.Hostname()
	if err != nil {
		return "node"
	}
	return h
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "corbalc-node:", err)
	os.Exit(1)
}

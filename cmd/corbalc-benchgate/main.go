// corbalc-benchgate turns `go test -bench -benchmem` output into a
// machine-readable benchmark report and enforces allocation budgets on
// it — the perf half of the CI gate (DESIGN.md §9).
//
// Usage:
//
//	go test -run='^$' -bench=... -benchmem ./... | corbalc-benchgate \
//	    -json BENCH_4.json \
//	    -max BenchmarkLocalNullInvoke=20 -max BenchmarkGIOPWriteMessage=0
//
// Bench output is read from stdin (or a file named by -in). Every
// metric the testing package prints — ns/op, B/op, allocs/op, and any
// b.ReportMetric extras such as E1's us/null-call-collocated or E1b's
// calls/s — lands in the JSON verbatim. Each -max NAME=N flag caps
// NAME's allocs/op at N; each -min NAME:METRIC=V flag floors any
// reported metric (the throughput-regression gate); each -minratio
// NAMEA,NAMEB:METRIC=V flag floors the ratio metric(A)/metric(B) (the
// multi-core scaling gate). A benchmark over budget or under floor
// fails the run with exit status 1, which is what makes the gate a
// gate.
//
// A benchmark run at several GOMAXPROCS values (`go test -cpu 1,2,4`)
// contributes one entry per variant, named "<base>/cpu=<N>"; a
// benchmark run at a single value keeps its bare name regardless of
// what that value was, so existing BENCH_*.json budgets are unaffected
// by the runner's core count.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// benchLine matches one benchmark result line: name, iteration count,
// then (value, unit) pairs.
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+(.*)$`)

// procSuffix matches the -<N> suffix go test appends to names: the
// GOMAXPROCS of the run, which `go test -cpu 1,2,4` varies per variant
// (a bare name means N=1).
var procSuffix = regexp.MustCompile(`-\d+$`)

// splitProcSuffix splits a printed benchmark name into its base name and
// processor count.
func splitProcSuffix(name string) (string, int) {
	s := procSuffix.FindString(name)
	if s == "" {
		return name, 1
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 1 {
		return name, 1
	}
	return name[:len(name)-len(s)], n
}

type budget struct {
	name   string
	metric string
	limit  float64
	isMin  bool
}

type budgetResult struct {
	Metric string   `json:"metric"`
	Max    *float64 `json:"max,omitempty"`
	Min    *float64 `json:"min,omitempty"`
	Actual float64  `json:"actual"`
	OK     bool     `json:"ok"`
}

type report struct {
	// Benchmarks maps benchmark name to its metrics (unit -> value).
	Benchmarks map[string]map[string]float64 `json:"benchmarks"`
	// Budgets records every enforced allocs/op ceiling and its outcome.
	Budgets map[string]budgetResult `json:"budgets,omitempty"`
}

// maxFlags holds ceiling budgets. NAME=N caps NAME's allocs/op (the
// original form); NAME:METRIC=V caps any reported metric — e.g.
// -max 'BenchmarkE12_Swarm/N=1000:heal-ms=15000' gates convergence
// latency the same way -min gates throughput.
type maxFlags []budget

func (m *maxFlags) String() string { return fmt.Sprint(*m) }

func (m *maxFlags) Set(s string) error {
	// Split on the LAST '=': sub-benchmark names embed '=' themselves
	// (BenchmarkConcurrentTCPThroughput/C=64).
	eq := strings.LastIndex(s, "=")
	if eq < 0 {
		return fmt.Errorf("want NAME=MAXALLOCS or NAME:METRIC=MAX, got %q", s)
	}
	name, val := s[:eq], s[eq+1:]
	metric := "allocs/op"
	if n, met, ok := strings.Cut(name, ":"); ok && met != "" {
		name, metric = n, met
	}
	f, err := strconv.ParseFloat(val, 64)
	if err != nil {
		return fmt.Errorf("bad budget %q: %w", val, err)
	}
	*m = append(*m, budget{name: name, metric: metric, limit: f})
	return nil
}

// minFlags holds floor budgets: NAME:METRIC=V fails the gate when the
// named benchmark reports METRIC below V. Where -max guards allocation
// regressions, -min guards throughput regressions — e.g.
// -min 'BenchmarkConcurrentTCPThroughput/C=64:calls/s=200000'.
type minFlags []budget

func (m *minFlags) String() string { return fmt.Sprint(*m) }

func (m *minFlags) Set(s string) error {
	// Last '=' splits off the value (names embed '='); first ':' before
	// it splits name from metric (metrics embed '/', e.g. calls/s).
	eq := strings.LastIndex(s, "=")
	if eq < 0 {
		return fmt.Errorf("want NAME:METRIC=MIN, got %q", s)
	}
	name, metric, ok := strings.Cut(s[:eq], ":")
	val := s[eq+1:]
	if !ok || metric == "" {
		return fmt.Errorf("want NAME:METRIC=MIN, got %q", s)
	}
	f, err := strconv.ParseFloat(val, 64)
	if err != nil {
		return fmt.Errorf("bad budget %q: %w", val, err)
	}
	*m = append(*m, budget{name: name, metric: metric, limit: f, isMin: true})
	return nil
}

// parse reads `go test -bench` output into name -> (unit -> value). A
// benchmark that ran at a single GOMAXPROCS keeps its bare base name (the
// historical keying every BENCH_*.json reader expects, whatever -N the
// runner happened to print); one that ran at several — `go test -cpu
// 1,2,4` scaling sweeps — gets one entry per variant, keyed
// "<base>/cpu=<N>", so floors and ratios can target each point of the
// scaling curve.
func parse(r io.Reader) (map[string]map[string]float64, error) {
	byBase := make(map[string]map[int]map[string]float64)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20) // experiment tables print long lines
	for sc.Scan() {
		match := benchLine.FindStringSubmatch(sc.Text())
		if match == nil {
			continue
		}
		base, cpu := splitProcSuffix(match[1])
		fields := strings.Fields(match[3])
		variants := byBase[base]
		if variants == nil {
			variants = make(map[int]map[string]float64)
			byBase[base] = variants
		}
		metrics := variants[cpu]
		if metrics == nil {
			metrics = make(map[string]float64)
			variants[cpu] = metrics
		}
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue // not a value/unit pair (e.g. trailing notes)
			}
			metrics[fields[i+1]] = v
		}
	}
	out := make(map[string]map[string]float64)
	for base, variants := range byBase {
		if len(variants) == 1 {
			for _, metrics := range variants {
				out[base] = metrics
			}
			continue
		}
		for cpu, metrics := range variants {
			out[fmt.Sprintf("%s/cpu=%d", base, cpu)] = metrics
		}
	}
	return out, sc.Err()
}

// ratioBudget is a scaling-ratio floor: metric(a)/metric(b) must be at
// least limit. It is how the gate pins multi-core scaling — e.g. "the
// 4-core throughput variant must beat the 1-core one by 2.5×" — without
// hard-coding machine-dependent absolute numbers.
type ratioBudget struct {
	a, b   string
	metric string
	limit  float64
}

// ratioFlags parses -minratio 'NAMEA,NAMEB:METRIC=V' (a comma separates
// the two names because benchmark names embed '/', ':' separates the
// metric, and the LAST '=' splits off the value because names embed '='
// too).
type ratioFlags []ratioBudget

func (r *ratioFlags) String() string { return fmt.Sprint(*r) }

func (r *ratioFlags) Set(s string) error {
	eq := strings.LastIndex(s, "=")
	if eq < 0 {
		return fmt.Errorf("want NAMEA,NAMEB:METRIC=MIN, got %q", s)
	}
	names, metric, ok := strings.Cut(s[:eq], ":")
	a, b, ok2 := strings.Cut(names, ",")
	if !ok || !ok2 || metric == "" || a == "" || b == "" {
		return fmt.Errorf("want NAMEA,NAMEB:METRIC=MIN, got %q", s)
	}
	f, err := strconv.ParseFloat(s[eq+1:], 64)
	if err != nil {
		return fmt.Errorf("bad ratio floor %q: %w", s[eq+1:], err)
	}
	*r = append(*r, ratioBudget{a: a, b: b, metric: metric, limit: f})
	return nil
}

// applyBudgets enforces every -max/-min budget against the parsed
// benchmarks, recording outcomes in rep; it reports whether any failed.
func applyBudgets(benches map[string]map[string]float64, all []budget, rep *report) bool {
	failed := false
	for _, b := range all {
		metrics, ok := benches[b.name]
		if !ok {
			fmt.Fprintf(os.Stderr, "corbalc-benchgate: budgeted benchmark %s missing from input\n", b.name)
			failed = true
			continue
		}
		actual, ok := metrics[b.metric]
		if !ok {
			hint := ""
			if b.metric == "allocs/op" {
				hint = " (run with -benchmem)"
			}
			fmt.Fprintf(os.Stderr, "corbalc-benchgate: %s has no %s%s\n", b.name, b.metric, hint)
			failed = true
			continue
		}
		limit := b.limit
		res := budgetResult{Metric: b.metric, Actual: actual}
		key := b.name
		if b.isMin {
			res.Min = &limit
			res.OK = actual >= limit
			// Floors can target any metric, so key the report entry by
			// metric too; allocs/op ceilings keep their bare-name key
			// for compatibility with earlier BENCH_*.json readers.
			key = b.name + ":" + b.metric
			if !res.OK {
				fmt.Fprintf(os.Stderr, "corbalc-benchgate: %s %s = %g below floor %g\n",
					b.name, b.metric, actual, limit)
				failed = true
			}
		} else {
			res.Max = &limit
			res.OK = actual <= limit
			if b.metric != "allocs/op" {
				// Metric ceilings share the floors' keying; bare-name
				// keys stay reserved for the classic allocs/op budgets.
				key = b.name + ":" + b.metric
			}
			if !res.OK {
				fmt.Fprintf(os.Stderr, "corbalc-benchgate: %s %s = %g exceeds budget %g\n",
					b.name, b.metric, actual, limit)
				failed = true
			}
		}
		rep.Budgets[key] = res
	}
	return failed
}

// applyRatios enforces every -minratio floor, recording outcomes in rep
// under "NAMEA,NAMEB:METRIC"; it reports whether any failed.
func applyRatios(benches map[string]map[string]float64, ratios []ratioBudget, rep *report) bool {
	failed := false
	for _, rb := range ratios {
		var vals [2]float64
		ok := true
		for i, name := range []string{rb.a, rb.b} {
			metrics, found := benches[name]
			if !found {
				fmt.Fprintf(os.Stderr, "corbalc-benchgate: ratio benchmark %s missing from input\n", name)
				failed, ok = true, false
				continue
			}
			v, found := metrics[rb.metric]
			if !found || (i == 1 && v == 0) {
				fmt.Fprintf(os.Stderr, "corbalc-benchgate: %s has no usable %s for ratio\n", name, rb.metric)
				failed, ok = true, false
				continue
			}
			vals[i] = v
		}
		if !ok {
			continue
		}
		limit := rb.limit
		actual := vals[0] / vals[1]
		res := budgetResult{Metric: rb.metric + " ratio", Min: &limit, Actual: actual, OK: actual >= limit}
		if !res.OK {
			fmt.Fprintf(os.Stderr, "corbalc-benchgate: %s/%s %s ratio = %.2f below floor %g\n",
				rb.a, rb.b, rb.metric, actual, limit)
			failed = true
		}
		rep.Budgets[rb.a+","+rb.b+":"+rb.metric] = res
	}
	return failed
}

func run() int {
	var (
		budgets  maxFlags
		jsonPath string
		inPath   string
	)
	var floors minFlags
	var ratios ratioFlags
	fs := flag.NewFlagSet("corbalc-benchgate", flag.ContinueOnError)
	fs.Var(&budgets, "max", "allocs/op budget as NAME=N (repeatable)")
	fs.Var(&floors, "min", "metric floor as NAME:METRIC=V (repeatable)")
	fs.Var(&ratios, "minratio", "scaling-ratio floor as NAMEA,NAMEB:METRIC=V (repeatable)")
	fs.StringVar(&jsonPath, "json", "", "write the JSON report to this file")
	fs.StringVar(&inPath, "in", "", "read bench output from this file instead of stdin")
	if err := fs.Parse(os.Args[1:]); err != nil {
		return 2
	}

	in := io.Reader(os.Stdin)
	if inPath != "" {
		f, err := os.Open(inPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "corbalc-benchgate:", err)
			return 2
		}
		defer f.Close()
		in = f
	}
	// Tee the raw output through so the gate is transparent in CI logs.
	benches, err := parse(io.TeeReader(in, os.Stdout))
	if err != nil {
		fmt.Fprintln(os.Stderr, "corbalc-benchgate:", err)
		return 2
	}
	if len(benches) == 0 {
		fmt.Fprintln(os.Stderr, "corbalc-benchgate: no benchmark results on input")
		return 2
	}

	rep := report{Benchmarks: benches, Budgets: make(map[string]budgetResult)}
	failed := applyBudgets(benches, append(append([]budget(nil), budgets...), floors...), &rep)
	failed = applyRatios(benches, ratios, &rep) || failed

	if jsonPath != "" {
		buf, err := json.MarshalIndent(&rep, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "corbalc-benchgate:", err)
			return 2
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(jsonPath, buf, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "corbalc-benchgate:", err)
			return 2
		}
	}

	names := make([]string, 0, len(rep.Budgets))
	for n := range rep.Budgets {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		r := rep.Budgets[n]
		verdict, bound := "ok", ""
		switch {
		case r.Max != nil:
			bound = fmt.Sprintf("(max %g)", *r.Max)
			if !r.OK {
				verdict = "OVER BUDGET"
			}
		case r.Min != nil:
			bound = fmt.Sprintf("(min %g)", *r.Min)
			if !r.OK {
				verdict = "BELOW FLOOR"
			}
		}
		fmt.Fprintf(os.Stderr, "budget %-52s %s %10g %s  %s\n", n, r.Metric, r.Actual, bound, verdict)
	}
	if failed {
		return 1
	}
	return 0
}

func main() { os.Exit(run()) }

package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleBench = `
goos: linux
BenchmarkLocalNullInvoke-4    	  500000	      2100 ns/op	     320 B/op	      18 allocs/op
BenchmarkConcurrentTCPThroughput/C=64-4 	  600000	      4000 ns/op	    250000 calls/s	     209 B/op	       6 allocs/op
BenchmarkConcurrentTCPThroughput/C=1-single-4 	  200000	     12700 ns/op	     78000 calls/s	     208 B/op	       6 allocs/op
PASS
`

func TestParseExtractsAllMetrics(t *testing.T) {
	benches, err := parse(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	m := benches["BenchmarkConcurrentTCPThroughput/C=64"]
	if m == nil {
		t.Fatalf("C=64 missing (GOMAXPROCS suffix not stripped?); have %v", benches)
	}
	if m["calls/s"] != 250000 || m["allocs/op"] != 6 {
		t.Fatalf("C=64 metrics = %v", m)
	}
}

func TestMaxFlagParsesEmbeddedEquals(t *testing.T) {
	var m maxFlags
	if err := m.Set("BenchmarkConcurrentTCPThroughput/C=64=10"); err != nil {
		t.Fatal(err)
	}
	if b := m[0]; b.name != "BenchmarkConcurrentTCPThroughput/C=64" || b.limit != 10 || b.isMin {
		t.Fatalf("parsed budget = %+v", b)
	}
}

func TestMinFlagParsing(t *testing.T) {
	var m minFlags
	if err := m.Set("BenchmarkX/C=64:calls/s=200000"); err != nil {
		t.Fatal(err)
	}
	b := m[0]
	if b.name != "BenchmarkX/C=64" || b.metric != "calls/s" || b.limit != 200000 || !b.isMin {
		t.Fatalf("parsed budget = %+v", b)
	}
	if err := m.Set("no-metric=5"); err == nil {
		t.Fatal("NAME=V without :METRIC accepted")
	}
	if err := m.Set("name:metric"); err == nil {
		t.Fatal("budget without value accepted")
	}
}

// gate runs the real CLI entry point against sampleBench with extra
// flags and returns its exit code and the JSON report.
func gate(t *testing.T, flags ...string) (int, report) {
	t.Helper()
	return gateOn(t, sampleBench, flags...)
}

// gateOn is gate over arbitrary bench output.
func gateOn(t *testing.T, input string, flags ...string) (int, report) {
	t.Helper()
	dir := t.TempDir()
	in := filepath.Join(dir, "bench.txt")
	if err := os.WriteFile(in, []byte(input), 0o644); err != nil {
		t.Fatal(err)
	}
	jsonPath := filepath.Join(dir, "out.json")
	oldArgs := os.Args
	defer func() { os.Args = oldArgs }()
	os.Args = append([]string{"corbalc-benchgate", "-in", in, "-json", jsonPath}, flags...)
	code := run()
	var rep report
	if buf, err := os.ReadFile(jsonPath); err == nil {
		if err := json.Unmarshal(buf, &rep); err != nil {
			t.Fatal(err)
		}
	}
	return code, rep
}

func TestGatePassesWithinBudgets(t *testing.T) {
	code, rep := gate(t,
		"-max", "BenchmarkLocalNullInvoke=20",
		"-min", "BenchmarkConcurrentTCPThroughput/C=64:calls/s=200000")
	if code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	res, ok := rep.Budgets["BenchmarkConcurrentTCPThroughput/C=64:calls/s"]
	if !ok || !res.OK || res.Min == nil || *res.Min != 200000 {
		t.Fatalf("floor result = %+v (present %v)", res, ok)
	}
	if res := rep.Budgets["BenchmarkLocalNullInvoke"]; res.Max == nil || *res.Max != 20 || !res.OK {
		t.Fatalf("ceiling result = %+v", res)
	}
}

func TestGateFailsBelowFloor(t *testing.T) {
	code, rep := gate(t, "-min", "BenchmarkConcurrentTCPThroughput/C=64:calls/s=300000")
	if code != 1 {
		t.Fatalf("exit = %d, want 1 for a throughput regression", code)
	}
	if res := rep.Budgets["BenchmarkConcurrentTCPThroughput/C=64:calls/s"]; res.OK {
		t.Fatalf("floor result = %+v, want failed", res)
	}
}

func TestGateFailsOverCeilingAndMissingBench(t *testing.T) {
	if code, _ := gate(t, "-max", "BenchmarkLocalNullInvoke=10"); code != 1 {
		t.Fatalf("exit = %d, want 1 for an alloc regression", code)
	}
	if code, _ := gate(t, "-min", "BenchmarkAbsent:calls/s=1"); code != 1 {
		t.Fatalf("exit = %d, want 1 for a missing budgeted benchmark", code)
	}
}

// cpuSweepBench is output from a `go test -cpu 1,2,4` scaling run: the
// same benchmarks at several GOMAXPROCS values (a bare name is the
// 1-proc variant).
const cpuSweepBench = `
goos: linux
BenchmarkParallelDispatch       	  500000	      4000 ns/op	    250000 calls/s	       0 allocs/op
BenchmarkParallelDispatch-2     	  900000	      2200 ns/op	    450000 calls/s	       0 allocs/op
BenchmarkParallelDispatch-4     	 1500000	      1300 ns/op	    769000 calls/s	       0 allocs/op
BenchmarkConcurrentTCPThroughput/C=64   	  400000	      4800 ns/op	    208000 calls/s	       0 allocs/op
BenchmarkConcurrentTCPThroughput/C=64-4 	 1200000	      1700 ns/op	    588000 calls/s	       0 allocs/op
PASS
`

func TestSplitProcSuffix(t *testing.T) {
	for _, tc := range []struct {
		name string
		base string
		cpu  int
	}{
		{"BenchmarkFoo", "BenchmarkFoo", 1},
		{"BenchmarkFoo-8", "BenchmarkFoo", 8},
		{"BenchmarkFoo/C=64", "BenchmarkFoo/C=64", 1},
		{"BenchmarkFoo/C=64-16", "BenchmarkFoo/C=64", 16},
		{"BenchmarkFoo/N=1000-2", "BenchmarkFoo/N=1000", 2},
	} {
		base, cpu := splitProcSuffix(tc.name)
		if base != tc.base || cpu != tc.cpu {
			t.Errorf("splitProcSuffix(%q) = (%q, %d), want (%q, %d)",
				tc.name, base, cpu, tc.base, tc.cpu)
		}
	}
}

func TestParseSingleProcDoesNotFanOut(t *testing.T) {
	benches, err := parse(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := benches["BenchmarkLocalNullInvoke/cpu=4"]; ok {
		t.Error("single-proc run must not fan out into /cpu=N variants")
	}
	if _, ok := benches["BenchmarkLocalNullInvoke"]; !ok {
		t.Error("single-proc run must keep the bare base name")
	}
}

func TestParseCPUSweepFansOutVariants(t *testing.T) {
	benches, err := parse(strings.NewReader(cpuSweepBench))
	if err != nil {
		t.Fatal(err)
	}
	for name, want := range map[string]float64{
		"BenchmarkParallelDispatch/cpu=1":             250000,
		"BenchmarkParallelDispatch/cpu=2":             450000,
		"BenchmarkParallelDispatch/cpu=4":             769000,
		"BenchmarkConcurrentTCPThroughput/C=64/cpu=1": 208000,
		"BenchmarkConcurrentTCPThroughput/C=64/cpu=4": 588000,
	} {
		if got := benches[name]["calls/s"]; got != want {
			t.Errorf("%s calls/s = %v, want %v", name, got, want)
		}
	}
	if _, ok := benches["BenchmarkParallelDispatch"]; ok {
		t.Error("multi-proc sweep must not also keep the bare base name")
	}
}

func TestMinRatioFlagParsing(t *testing.T) {
	var r ratioFlags
	if err := r.Set("BenchmarkParallelDispatch/cpu=4,BenchmarkParallelDispatch/cpu=1:calls/s=2.5"); err != nil {
		t.Fatal(err)
	}
	want := ratioBudget{
		a:      "BenchmarkParallelDispatch/cpu=4",
		b:      "BenchmarkParallelDispatch/cpu=1",
		metric: "calls/s",
		limit:  2.5,
	}
	if len(r) != 1 || r[0] != want {
		t.Fatalf("parsed %+v, want %+v", r, want)
	}
	for _, bad := range []string{"", "foo", "a,b=1", "a:calls/s=1", ",b:calls/s=1", "a,b:calls/s=x"} {
		var rf ratioFlags
		if err := rf.Set(bad); err == nil {
			t.Errorf("Set(%q) accepted, want error", bad)
		}
	}
}

func TestGateEnforcesScalingRatio(t *testing.T) {
	// 769000/250000 = 3.076: a 2.5 floor passes, a 3.5 floor fails.
	ratioArg := "BenchmarkParallelDispatch/cpu=4,BenchmarkParallelDispatch/cpu=1:calls/s="
	code, rep := gateOn(t, cpuSweepBench, "-minratio", ratioArg+"2.5")
	if code != 0 {
		t.Fatalf("exit = %d, want 0 for ratio 3.08 >= 2.5", code)
	}
	res, ok := rep.Budgets["BenchmarkParallelDispatch/cpu=4,BenchmarkParallelDispatch/cpu=1:calls/s"]
	if !ok || !res.OK || res.Min == nil || *res.Min != 2.5 {
		t.Fatalf("ratio result = %+v (present %v)", res, ok)
	}
	if res.Actual < 3.07 || res.Actual > 3.08 {
		t.Fatalf("ratio actual = %v, want ~3.076", res.Actual)
	}

	if code, _ := gateOn(t, cpuSweepBench, "-minratio", ratioArg+"3.5"); code != 1 {
		t.Fatalf("exit = %d, want 1 for ratio 3.08 < 3.5", code)
	}
	if code, _ := gateOn(t, cpuSweepBench,
		"-minratio", "BenchmarkAbsent,BenchmarkParallelDispatch/cpu=1:calls/s=1"); code != 1 {
		t.Fatalf("exit = %d, want 1 for a missing ratio benchmark", code)
	}
}

func TestGateEnforcesBudgetsOnCPUVariants(t *testing.T) {
	code, _ := gateOn(t, cpuSweepBench,
		"-min", "BenchmarkConcurrentTCPThroughput/C=64/cpu=4:calls/s=500000",
		"-max", "BenchmarkParallelDispatch/cpu=4=2")
	if code != 0 {
		t.Fatalf("exit = %d, want 0 for budgets within bounds on cpu variants", code)
	}
	if code, _ := gateOn(t, cpuSweepBench,
		"-min", "BenchmarkConcurrentTCPThroughput/C=64/cpu=4:calls/s=600000"); code != 1 {
		t.Fatalf("exit = %d, want 1 for a floor above the cpu=4 variant", code)
	}
}

package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleBench = `
goos: linux
BenchmarkLocalNullInvoke-4    	  500000	      2100 ns/op	     320 B/op	      18 allocs/op
BenchmarkConcurrentTCPThroughput/C=64-4 	  600000	      4000 ns/op	    250000 calls/s	     209 B/op	       6 allocs/op
BenchmarkConcurrentTCPThroughput/C=1-single-4 	  200000	     12700 ns/op	     78000 calls/s	     208 B/op	       6 allocs/op
PASS
`

func TestParseExtractsAllMetrics(t *testing.T) {
	benches, err := parse(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	m := benches["BenchmarkConcurrentTCPThroughput/C=64"]
	if m == nil {
		t.Fatalf("C=64 missing (GOMAXPROCS suffix not stripped?); have %v", benches)
	}
	if m["calls/s"] != 250000 || m["allocs/op"] != 6 {
		t.Fatalf("C=64 metrics = %v", m)
	}
}

func TestMaxFlagParsesEmbeddedEquals(t *testing.T) {
	var m maxFlags
	if err := m.Set("BenchmarkConcurrentTCPThroughput/C=64=10"); err != nil {
		t.Fatal(err)
	}
	if b := m[0]; b.name != "BenchmarkConcurrentTCPThroughput/C=64" || b.limit != 10 || b.isMin {
		t.Fatalf("parsed budget = %+v", b)
	}
}

func TestMinFlagParsing(t *testing.T) {
	var m minFlags
	if err := m.Set("BenchmarkX/C=64:calls/s=200000"); err != nil {
		t.Fatal(err)
	}
	b := m[0]
	if b.name != "BenchmarkX/C=64" || b.metric != "calls/s" || b.limit != 200000 || !b.isMin {
		t.Fatalf("parsed budget = %+v", b)
	}
	if err := m.Set("no-metric=5"); err == nil {
		t.Fatal("NAME=V without :METRIC accepted")
	}
	if err := m.Set("name:metric"); err == nil {
		t.Fatal("budget without value accepted")
	}
}

// gate runs the real CLI entry point against sampleBench with extra
// flags and returns its exit code and the JSON report.
func gate(t *testing.T, flags ...string) (int, report) {
	t.Helper()
	dir := t.TempDir()
	in := filepath.Join(dir, "bench.txt")
	if err := os.WriteFile(in, []byte(sampleBench), 0o644); err != nil {
		t.Fatal(err)
	}
	jsonPath := filepath.Join(dir, "out.json")
	oldArgs := os.Args
	defer func() { os.Args = oldArgs }()
	os.Args = append([]string{"corbalc-benchgate", "-in", in, "-json", jsonPath}, flags...)
	code := run()
	var rep report
	if buf, err := os.ReadFile(jsonPath); err == nil {
		if err := json.Unmarshal(buf, &rep); err != nil {
			t.Fatal(err)
		}
	}
	return code, rep
}

func TestGatePassesWithinBudgets(t *testing.T) {
	code, rep := gate(t,
		"-max", "BenchmarkLocalNullInvoke=20",
		"-min", "BenchmarkConcurrentTCPThroughput/C=64:calls/s=200000")
	if code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	res, ok := rep.Budgets["BenchmarkConcurrentTCPThroughput/C=64:calls/s"]
	if !ok || !res.OK || res.Min == nil || *res.Min != 200000 {
		t.Fatalf("floor result = %+v (present %v)", res, ok)
	}
	if res := rep.Budgets["BenchmarkLocalNullInvoke"]; res.Max == nil || *res.Max != 20 || !res.OK {
		t.Fatalf("ceiling result = %+v", res)
	}
}

func TestGateFailsBelowFloor(t *testing.T) {
	code, rep := gate(t, "-min", "BenchmarkConcurrentTCPThroughput/C=64:calls/s=300000")
	if code != 1 {
		t.Fatalf("exit = %d, want 1 for a throughput regression", code)
	}
	if res := rep.Budgets["BenchmarkConcurrentTCPThroughput/C=64:calls/s"]; res.OK {
		t.Fatalf("floor result = %+v, want failed", res)
	}
}

func TestGateFailsOverCeilingAndMissingBench(t *testing.T) {
	if code, _ := gate(t, "-max", "BenchmarkLocalNullInvoke=10"); code != 1 {
		t.Fatalf("exit = %d, want 1 for an alloc regression", code)
	}
	if code, _ := gate(t, "-min", "BenchmarkAbsent:calls/s=1"); code != 1 {
		t.Fatalf("exit = %d, want 1 for a missing budgeted benchmark", code)
	}
}

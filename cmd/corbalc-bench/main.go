// corbalc-bench re-runs the reproduction's evaluation harness (the
// experiments of DESIGN.md §4 / EXPERIMENTS.md) and prints each result
// table.
//
// Usage:
//
//	corbalc-bench [-scale N] [-seconds F] [-only E1,E3,...]
//
// -scale multiplies cluster sizes, -seconds multiplies measurement
// windows; -only selects a subset of experiments.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"corbalc/internal/experiments"
)

func main() {
	scale := flag.Int("scale", 1, "multiply cluster sizes")
	seconds := flag.Float64("seconds", 1, "multiply measurement windows")
	only := flag.String("only", "", "comma-separated experiment ids (e.g. E1,E3); empty runs all")
	flag.Parse()

	sc := experiments.Scale{Nodes: *scale, Seconds: *seconds}
	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}

	type exp struct {
		id  string
		run func(experiments.Scale) *experiments.Table
	}
	all := []exp{
		{"E1", experiments.E1Invocation},
		{"E1b", experiments.E1bConcurrency},
		{"E2", experiments.E2Registry},
		{"E3", experiments.E3Consistency},
		{"E4", experiments.E4QueryHierarchy},
		{"E5", experiments.E5Failover},
		{"E6", experiments.E6Deployment},
		{"E7", experiments.E7Migration},
		{"E8", experiments.E8TinyDevices},
		{"E9", experiments.E9Grid},
		{"E10", experiments.E10Predictive},
		{"E13", experiments.E13Gateway},
		{"A1", experiments.A1Fanout},
		{"A2", experiments.A2Replicas},
	}

	ran := 0
	start := time.Now()
	for _, e := range all {
		if len(want) > 0 && !want[e.id] {
			continue
		}
		t0 := time.Now()
		table := e.run(sc)
		fmt.Println(table.Render())
		fmt.Printf("(%s took %v)\n\n", e.id, time.Since(t0).Round(time.Millisecond))
		ran++
	}
	if ran == 0 {
		fmt.Fprintln(os.Stderr, "no experiments selected; ids are E1..E10, E13, A1, A2")
		os.Exit(2)
	}
	fmt.Printf("ran %d experiments in %v\n", ran, time.Since(start).Round(time.Millisecond))
}
